/**
 * @file
 * Unit tests for the paper's contribution: IOVA encoding, magazines,
 * DMA caches, the DAMN allocator, and the DMA-API interposition.
 */

#include <gtest/gtest.h>

#include "core/damn_dma.hh"
#include "dma/schemes.hh"

using namespace damn;
using namespace damn::core;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct CoreFixture : ::testing::Test
{
    CoreFixture()
        : ctx(sim::CostModel{}, 2, 4),
          pm(512 * kMiB),
          pa(pm, 2),
          heap(pa),
          mmu(ctx),
          nic(ctx, "nic0", mmu, pm),
          alloc(ctx, pa, heap, mmu)
    {}

    sim::CpuCursor
    cpu(sim::CoreId core = 0)
    {
        return sim::CpuCursor(ctx.machine.core(core), ctx.now());
    }

    sim::Context ctx;
    mem::PhysicalMemory pm;
    mem::PageAllocator pa;
    mem::KmallocHeap heap;
    iommu::Iommu mmu;
    dma::Device nic;
    DamnAllocator alloc;
};

} // namespace

// ---------------------------------------------------------------------
// IOVA encoding (figure 3)
// ---------------------------------------------------------------------

TEST(IovaEncoding, MsbMarksDamn)
{
    const iommu::Iova iova = encodeIova(0, Rights::Read, 0, 0, 0);
    EXPECT_TRUE(isDamnIova(iova));
    EXPECT_FALSE(isDamnIova(iova & ~iommu::kDamnIovaBit));
}

TEST(IovaEncoding, RoundTripSweep)
{
    for (sim::CoreId cpu = 0; cpu < kMaxCpus; cpu += 9) {
        for (const Rights r :
             {Rights::Read, Rights::Write, Rights::RW}) {
            for (std::uint32_t dev = 0; dev < kMaxDevices; dev += 13) {
                for (sim::NumaId numa = 0; numa < 2; ++numa) {
                    const std::uint64_t off = 0x1230000;
                    const iommu::Iova iova =
                        encodeIova(cpu, r, dev, numa, off);
                    const IovaFields f = decodeIova(iova);
                    EXPECT_EQ(f.cpu, cpu);
                    EXPECT_EQ(f.rights, r);
                    EXPECT_EQ(f.devIdx, dev);
                    EXPECT_EQ(f.numa, numa);
                    EXPECT_EQ(f.offset, off);
                }
            }
        }
    }
}

TEST(IovaEncoding, FieldsDoNotCollide)
{
    const auto a = encodeIova(1, Rights::Read, 0, 0, 0);
    const auto b = encodeIova(0, Rights::Read, 1, 0, 0);
    const auto c = encodeIova(0, Rights::Write, 0, 0, 0);
    const auto d = encodeIova(0, Rights::Read, 0, 1, 0);
    const auto e = encodeIova(0, Rights::Read, 0, 0, 64 * 1024);
    EXPECT_EQ(std::set<iommu::Iova>({a, b, c, d, e}).size(), 5u);
}

TEST(IovaEncoding, StaysIn48Bits)
{
    const iommu::Iova iova = encodeIova(
        kMaxCpus - 1, Rights::RW, kMaxDevices - 1, 1, kOffsetMask);
    EXPECT_LT(iova, 1ull << 48);
}

TEST(IovaEncoding, PermOf)
{
    EXPECT_EQ(permOf(Rights::Read), iommu::PermRead);
    EXPECT_EQ(permOf(Rights::Write), iommu::PermWrite);
    EXPECT_EQ(permOf(Rights::RW), iommu::PermRW);
}

TEST(IovaEncoding, NarrowBackendLayoutRoundTrips)
{
    // A backend implementing fewer input bits shifts the whole figure-3
    // encoding down instead of breaking it.
    constexpr iommu::AddressLayout lay{40};
    const std::uint64_t off = 0x123000;
    const iommu::Iova iova = encodeIova(3, Rights::Write, 7, 1, off, lay);
    EXPECT_TRUE(isDamnIova(iova, lay));
    EXPECT_LT(iova, 1ull << 40);
    EXPECT_FALSE(isDamnIova(iova)); // not tagged in the 48-bit layout
    const IovaFields f = decodeIova(iova, lay);
    EXPECT_EQ(f.cpu, 3);
    EXPECT_EQ(f.rights, Rights::Write);
    EXPECT_EQ(f.devIdx, 7u);
    EXPECT_EQ(f.numa, 1);
    EXPECT_EQ(f.offset, off);
}

// ---------------------------------------------------------------------
// Magazine / Depot
// ---------------------------------------------------------------------

TEST(Magazine, LifoOrder)
{
    Magazine m(4);
    m.push(Chunk{1, 0});
    m.push(Chunk{2, 0});
    EXPECT_EQ(m.pop().pfn, 2u);
    EXPECT_EQ(m.pop().pfn, 1u);
    EXPECT_TRUE(m.empty());
}

TEST(Magazine, CapacityEnforced)
{
    Magazine m(2);
    m.push(Chunk{1, 0});
    EXPECT_FALSE(m.full());
    m.push(Chunk{2, 0});
    EXPECT_TRUE(m.full());
}

namespace {

/** Chunk source handing out fake pfns; counts alloc/release. */
struct FakeSource : ChunkSource
{
    Chunk
    allocChunk(sim::CpuCursor &) override
    {
        return Chunk{next++, 0};
    }

    void
    releaseChunk(sim::CpuCursor &, const Chunk &) override
    {
        ++released;
    }

    mem::Pfn next = 100;
    unsigned released = 0;
};

} // namespace

TEST(Depot, ExchangeForFullFillsFromSource)
{
    sim::Context ctx(sim::CostModel{}, 1, 1);
    FakeSource src;
    Depot depot(src, 4, 100);
    Magazine mag(4);
    auto cpu = sim::CpuCursor(ctx.machine.core(0), 0);
    depot.exchangeForFull(cpu, mag);
    EXPECT_TRUE(mag.full());
    EXPECT_EQ(depot.exchanges(), 1u);
}

TEST(Depot, FullMagazinesRoundTrip)
{
    sim::Context ctx(sim::CostModel{}, 1, 1);
    FakeSource src;
    Depot depot(src, 2, 100);
    Magazine mag(2);
    mag.push(Chunk{7, 0});
    mag.push(Chunk{8, 0});
    auto cpu = sim::CpuCursor(ctx.machine.core(0), 0);
    depot.exchangeForEmpty(cpu, mag);
    EXPECT_TRUE(mag.empty());
    EXPECT_EQ(depot.cachedChunks(), 2u);
    depot.exchangeForFull(cpu, mag);
    EXPECT_TRUE(mag.full());
    EXPECT_EQ(mag.pop().pfn, 8u);
    EXPECT_EQ(src.next, 100u) << "no fresh chunks should be needed";
}

TEST(Depot, ShrinkReleasesEverything)
{
    sim::Context ctx(sim::CostModel{}, 1, 1);
    FakeSource src;
    Depot depot(src, 2, 100);
    Magazine mag(2);
    mag.push(Chunk{7, 0});
    mag.push(Chunk{8, 0});
    auto cpu = sim::CpuCursor(ctx.machine.core(0), 0);
    depot.exchangeForEmpty(cpu, mag);
    EXPECT_EQ(depot.shrink(cpu), 2u);
    EXPECT_EQ(src.released, 2u);
    EXPECT_EQ(depot.cachedChunks(), 0u);
}

TEST(Depot, ExchangeChargesLockTime)
{
    sim::Context ctx(sim::CostModel{}, 1, 1);
    FakeSource src;
    Depot depot(src, 4, 250);
    Magazine mag(4);
    auto cpu = sim::CpuCursor(ctx.machine.core(0), 0);
    depot.exchangeForFull(cpu, mag);
    EXPECT_GE(cpu.time, 250u);
}

// ---------------------------------------------------------------------
// DamnAllocator — Table 2 API + metadata
// ---------------------------------------------------------------------

TEST_F(CoreFixture, AllocReturnsUsableMemory)
{
    auto c = cpu();
    const mem::Pa buf =
        alloc.damnAlloc(c, &nic, Rights::Write, 2048);
    ASSERT_NE(buf, 0u);
    pm.fill(buf, 0x77, 2048);
    EXPECT_EQ(pm.readByte(buf + 2047), 0x77);
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, AllocIsEightByteAligned)
{
    auto c = cpu();
    for (const std::uint32_t sz : {1u, 7u, 100u, 999u, 4097u}) {
        const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Read, sz);
        EXPECT_EQ(buf % 8, 0u) << "size " << sz;
    }
}

TEST_F(CoreFixture, AllocPagesNaturallyAligned)
{
    auto c = cpu();
    for (unsigned k = 0; k <= 4; ++k) {
        const mem::Pfn pfn =
            alloc.damnAllocPages(c, &nic, Rights::Write, k);
        ASSERT_NE(pfn, mem::kInvalidPfn);
        EXPECT_EQ(pfn % (1ull << k), 0u) << "order " << k;
        alloc.damnFreePages(c, pfn, k);
    }
}

TEST_F(CoreFixture, BufferIsPermanentlyMappedWithRights)
{
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 4096);
    const iommu::Iova iova = alloc.iovaOf(buf);
    EXPECT_TRUE(isDamnIova(iova));
    // Device can write but not read (Rights::Write).
    EXPECT_TRUE(mmu.translate(nic.domain(), iova, true).ok);
    EXPECT_TRUE(mmu.translate(nic.domain(), iova, false).fault);
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, IovaTranslatesBackToBuffer)
{
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::RW, 100);
    const iommu::Iova iova = alloc.iovaOf(buf);
    const iommu::TranslateResult tr =
        mmu.translate(nic.domain(), iova, true);
    ASSERT_TRUE(tr.ok);
    EXPECT_EQ(tr.pa, buf);
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, FreshChunksAreZeroed)
{
    // Section 5.6 TX security: DAMN zeroes memory from the OS.
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Read, 65536);
    for (unsigned i = 0; i < 65536; i += 4096)
        EXPECT_EQ(pm.readByte(buf + i), 0);
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, CompoundMetadataLayout)
{
    // Section 5.5: F flag on the *third* page struct; IOVA + cache id
    // in the first tail page.
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 64);
    const mem::Pfn head = mem::paToPfn(buf); // first alloc: chunk start
    EXPECT_TRUE(pm.page(head).test(mem::PG_head));
    EXPECT_TRUE(pm.page(head + 1).test(mem::PG_tail));
    EXPECT_TRUE(pm.page(head + 2).test(mem::PG_damn));
    EXPECT_FALSE(pm.page(head + 1).test(mem::PG_damn));
    EXPECT_EQ(pm.page(head + 1).compoundHead, head);
    EXPECT_NE(pm.page(head + 1).priv, 0u); // the chunk IOVA
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, IsDamnBufferChecks)
{
    auto c = cpu();
    const mem::Pa dbuf = alloc.damnAlloc(c, &nic, Rights::Write, 256);
    const mem::Pa kbuf = heap.kmalloc(256);
    const mem::Pfn raw = pa.allocPages(0, 0);
    EXPECT_TRUE(alloc.isDamnBuffer(dbuf));
    EXPECT_FALSE(alloc.isDamnBuffer(kbuf));
    EXPECT_FALSE(alloc.isDamnBuffer(mem::pfnToPa(raw)));
    alloc.damnFree(c, dbuf);
    heap.kfree(kbuf);
    pa.freePages(raw, 0);
}

TEST_F(CoreFixture, EncodedIovaMatchesPageMetadata)
{
    // The IOVA's encoded fields (figure 3) and the tail-page metadata
    // (section 5.5) must agree — both identify the allocator.
    auto c = cpu(2);
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 512);
    const IovaFields f = decodeIova(alloc.iovaOf(buf));
    EXPECT_EQ(f.rights, alloc.rightsOf(buf));
    EXPECT_EQ(f.numa, ctx.machine.numaOf(2));
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, NullDeviceFallsBackToKernelAllocators)
{
    auto c = cpu();
    const mem::Pa small = alloc.damnAlloc(c, nullptr, Rights::Read, 256);
    EXPECT_FALSE(alloc.isDamnBuffer(small));
    EXPECT_TRUE(pm.pageOf(small).test(mem::PG_slab));
    alloc.damnFree(c, small);

    const mem::Pa big =
        alloc.damnAlloc(c, nullptr, Rights::Read, 32768);
    EXPECT_FALSE(alloc.isDamnBuffer(big));
    alloc.damnFree(c, big);

    const mem::Pfn pages =
        alloc.damnAllocPages(c, nullptr, Rights::Read, 2);
    EXPECT_FALSE(alloc.isDamnBuffer(mem::pfnToPa(pages)));
    alloc.damnFreePages(c, pages, 2);
    EXPECT_EQ(heap.liveObjects(), 0u);
}

TEST_F(CoreFixture, SeparateCachesPerRights)
{
    auto c = cpu();
    const mem::Pa r = alloc.damnAlloc(c, &nic, Rights::Read, 4096);
    const mem::Pa w = alloc.damnAlloc(c, &nic, Rights::Write, 4096);
    EXPECT_NE(mem::paToPfn(r) >> 4, mem::paToPfn(w) >> 4)
        << "different rights must come from different chunks";
    EXPECT_EQ(alloc.rightsOf(r), Rights::Read);
    EXPECT_EQ(alloc.rightsOf(w), Rights::Write);
    alloc.damnFree(c, r);
    alloc.damnFree(c, w);
}

TEST_F(CoreFixture, SeparateCachesPerDevice)
{
    dma::Device nic2(ctx, "nic1", mmu, pm);
    auto c = cpu();
    const mem::Pa a = alloc.damnAlloc(c, &nic, Rights::Write, 4096);
    const mem::Pa b = alloc.damnAlloc(c, &nic2, Rights::Write, 4096);
    EXPECT_EQ(alloc.domainOf(a), nic.domain());
    EXPECT_EQ(alloc.domainOf(b), nic2.domain());
    // Device 2 cannot touch device 1's buffer.
    EXPECT_TRUE(
        mmu.translate(nic2.domain(), alloc.iovaOf(a), true).fault);
    alloc.damnFree(c, a);
    alloc.damnFree(c, b);
}

TEST_F(CoreFixture, NumaCachesPerCallingCore)
{
    auto c0 = cpu(0); // socket 0
    auto c1 = cpu(1); // socket 1
    const mem::Pa a = alloc.damnAlloc(c0, &nic, Rights::Write, 4096);
    const mem::Pa b = alloc.damnAlloc(c1, &nic, Rights::Write, 4096);
    EXPECT_EQ(pa.nodeOf(mem::paToPfn(a)), 0u);
    EXPECT_EQ(pa.nodeOf(mem::paToPfn(b)), 1u);
    alloc.damnFree(c0, a);
    alloc.damnFree(c1, b);
}

TEST_F(CoreFixture, BumpAllocatorPacksSequentialAllocs)
{
    auto c = cpu();
    const mem::Pa a = alloc.damnAlloc(c, &nic, Rights::Write, 1000);
    const mem::Pa b = alloc.damnAlloc(c, &nic, Rights::Write, 1000);
    EXPECT_EQ(b, a + 1000); // 1000 is already 8-aligned
    alloc.damnFree(c, a);
    alloc.damnFree(c, b);
}

TEST_F(CoreFixture, ChunkRecyclesWhenAllBuffersFreed)
{
    auto c = cpu();
    // Fill exactly one chunk with 64 KiB, free it, allocate again:
    // the chunk must come back through the magazine (same pfn).
    const mem::Pa a = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    alloc.damnFree(c, a);
    // Force retirement of the bump chunk by allocating again.
    const mem::Pa b = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    alloc.damnFree(c, b);
    EXPECT_EQ(mem::paToPfn(a), mem::paToPfn(b));
}

TEST_F(CoreFixture, RecycledChunksAreNotRezeroed)
{
    // Only *fresh-from-OS* chunks are zeroed; recycled chunks may
    // still hold old packet data (which the device could always see).
    auto c = cpu();
    const mem::Pa a = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    pm.fill(a, 0xbe, 64);
    alloc.damnFree(c, a);
    const mem::Pa b = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    ASSERT_EQ(a, b);
    EXPECT_EQ(pm.readByte(b), 0xbe);
    alloc.damnFree(c, b);
}

TEST_F(CoreFixture, ContextCopiesAreIsolated)
{
    // Standard- and interrupt-context allocations carve different
    // chunks (two physical cache copies, section 5.4).
    auto c = cpu();
    const mem::Pa std_buf = alloc.damnAlloc(c, &nic, Rights::Write,
                                            512, AllocCtx::Standard);
    const mem::Pa irq_buf = alloc.damnAlloc(c, &nic, Rights::Write,
                                            512, AllocCtx::Interrupt);
    EXPECT_NE(mem::paToPfn(std_buf) >> 4, mem::paToPfn(irq_buf) >> 4);
    alloc.damnFree(c, std_buf, AllocCtx::Standard);
    alloc.damnFree(c, irq_buf, AllocCtx::Interrupt);
}

TEST_F(CoreFixture, RefcountAcrossManyBuffers)
{
    auto c = cpu();
    std::vector<mem::Pa> bufs;
    for (int i = 0; i < 64; ++i)
        bufs.push_back(alloc.damnAlloc(c, &nic, Rights::Write, 1024));
    // Free in reverse order; memory must be fully recyclable after.
    const std::uint64_t owned = alloc.ownedBytes();
    for (auto it = bufs.rbegin(); it != bufs.rend(); ++it)
        alloc.damnFree(c, *it);
    EXPECT_EQ(alloc.ownedBytes(), owned)
        << "chunks stay cached (not returned to the OS)";
}

TEST_F(CoreFixture, CrossCoreFreeGoesToFreeingCoresMagazine)
{
    // Producer/consumer: core 0 allocates, core 3 frees (the paper's
    // target I/O pattern).
    auto c0 = cpu(0);
    const mem::Pa a = alloc.damnAlloc(c0, &nic, Rights::Write, 65536);
    auto c3 = cpu(3);
    alloc.damnFree(c3, a);
    // Core 3 now owns the chunk: its next allocation of the same kind
    // must reuse it without touching the page allocator...
    const std::uint64_t os_allocs = pa.allocCalls();
    // (force new chunk acquisition on core 3's bump allocator)
    auto c3b = cpu(3);
    // NUMA note: core 3 is socket 1, core 0 socket 0 — the freeing
    // core's magazine belongs to the *cache identified by the page
    // metadata* (socket 0's cache), so allocate from a socket-0 core.
    (void)c3b;
    auto c0b = cpu(0);
    const mem::Pa b = alloc.damnAlloc(c0b, &nic, Rights::Write, 65536);
    EXPECT_NE(b, 0u);
    EXPECT_GE(pa.allocCalls(), os_allocs);
    alloc.damnFree(c0b, b);
}

TEST_F(CoreFixture, OwnedBytesTracksChunkCount)
{
    auto c = cpu();
    EXPECT_EQ(alloc.ownedBytes(), 0u);
    const mem::Pa a = alloc.damnAlloc(c, &nic, Rights::Write, 100);
    // The first depot exchange fills a whole magazine (M = 16 chunks);
    // this is the Bonwick guarantee of M allocations between depot
    // visits, so DAMN "owns" a magazine's worth up front.
    EXPECT_EQ(alloc.ownedBytes(), 16u * 64 * 1024);
    alloc.damnFree(c, a);
    EXPECT_EQ(alloc.ownedBytes(), 16u * 64 * 1024)
        << "cached, not freed";
}

TEST_F(CoreFixture, ShrinkerReturnsMemoryAndClosesMappings)
{
    auto c = cpu();
    std::vector<mem::Pa> bufs;
    for (int i = 0; i < 32; ++i)
        bufs.push_back(alloc.damnAlloc(c, &nic, Rights::Write, 65536));
    const iommu::Iova stale_iova = alloc.iovaOf(bufs[0]);
    // Warm the IOTLB so the shrinker's flush is actually load-bearing.
    EXPECT_TRUE(mmu.translate(nic.domain(), stale_iova, true).ok);
    for (const mem::Pa b : bufs)
        alloc.damnFree(c, b);

    const std::uint64_t released = alloc.shrink(c);
    EXPECT_GT(released, 0u);
    // At most the still-installed bump chunk (allocator bias) remains.
    EXPECT_LE(alloc.ownedBytes(), 64u * 1024);
    // The released pages are unmapped *and* the IOTLB is flushed: the
    // device's old IOVA no longer works.
    EXPECT_TRUE(mmu.translate(nic.domain(), stale_iova, true).fault);
}

TEST_F(CoreFixture, ShrinkerLeavesLiveBuffersAlone)
{
    auto c = cpu();
    const mem::Pa live = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    const mem::Pa dead = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    alloc.damnFree(c, dead);
    alloc.shrink(c);
    EXPECT_TRUE(alloc.isDamnBuffer(live));
    EXPECT_TRUE(mmu.translate(nic.domain(), alloc.iovaOf(live), true).ok);
    pm.fill(live, 0x42, 65536);
    EXPECT_EQ(pm.readByte(live + 65535), 0x42);
    alloc.damnFree(c, live);
}

TEST_F(CoreFixture, MaxAllocationIsChunkSize)
{
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 65536);
    EXPECT_NE(buf, 0u);
    EXPECT_EQ(mem::pageOffset(buf), 0u);
    alloc.damnFree(c, buf);
}

TEST_F(CoreFixture, FreeNullIsNoop)
{
    auto c = cpu();
    alloc.damnFree(c, 0);
    alloc.damnFreePages(c, mem::kInvalidPfn, 0);
}

// ---------------------------------------------------------------------
// DmaCache variants (Table 3)
// ---------------------------------------------------------------------

TEST_F(CoreFixture, HugeDenseVariantUsesHugeMappings)
{
    DmaCacheConfig cfg;
    cfg.hugeIovaPages = true;
    cfg.denseIova = true;
    DamnAllocator huge(ctx, pa, heap, mmu, DamnConfig{cfg});
    auto c = cpu();
    const mem::Pa buf = huge.damnAlloc(c, &nic, Rights::Write, 4096);
    const iommu::Iova iova = huge.iovaOf(buf);
    const iommu::TranslateResult tr =
        mmu.translate(nic.domain(), iova, true);
    EXPECT_TRUE(tr.ok);
    EXPECT_EQ(tr.pa, buf);
    EXPECT_GT(mmu.pageTable(nic.domain()).mapped2mEntries(), 0u);
    huge.damnFree(c, buf);
}

TEST_F(CoreFixture, DenseIovasArePacked)
{
    DmaCacheConfig cfg;
    cfg.denseIova = true;
    DamnAllocator dense(ctx, pa, heap, mmu, DamnConfig{cfg});
    auto c = cpu(0);
    auto c2 = cpu(2);
    const mem::Pa a = dense.damnAlloc(c, &nic, Rights::Write, 65536);
    const mem::Pa b = dense.damnAlloc(c2, &nic, Rights::Write, 65536);
    // Dense: chunk IOVAs pack into one small region regardless of the
    // allocating core (no cpu bits in the address; one magazine's
    // worth may be pre-carved, so assert the region bound).
    const iommu::Iova ia = dense.iovaOf(a);
    const iommu::Iova ib = dense.iovaOf(b);
    EXPECT_NE(ia, ib);
    EXPECT_EQ(ia % 65536, 0u);
    EXPECT_EQ(ib % 65536, 0u);
    EXPECT_LT(ia - iommu::kDamnIovaBit, 64u * 65536);
    EXPECT_LT(ib - iommu::kDamnIovaBit, 64u * 65536);
    dense.damnFree(c, a);
    dense.damnFree(c2, b);
}

TEST_F(CoreFixture, NoIommuVariantIsIdentity)
{
    iommu::Iommu off(ctx, /*enabled=*/false);
    dma::Device dev2(ctx, "nic2", off, pm);
    DmaCacheConfig cfg;
    cfg.mapInIommu = false;
    DamnAllocator noiommu(ctx, pa, heap, off, DamnConfig{cfg});
    auto c = cpu();
    const mem::Pa buf = noiommu.damnAlloc(c, &dev2, Rights::Write, 4096);
    EXPECT_EQ(noiommu.iovaOf(buf), buf) << "DMA address == PA";
    noiommu.damnFree(c, buf);
}

// ---------------------------------------------------------------------
// DamnDmaApi interposition (section 5.3)
// ---------------------------------------------------------------------

namespace {

struct InterposeFixture : CoreFixture
{
    InterposeFixture()
        : api(ctx, alloc,
              std::make_unique<dma::StrictDmaApi>(ctx, mmu))
    {}

    DamnDmaApi api;
};

} // namespace

TEST_F(InterposeFixture, DamnBufferMapReturnsPermanentIova)
{
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 2048);
    const iommu::Iova dma =
        api.map(c, nic, buf, 2048, dma::Dir::FromDevice);
    EXPECT_EQ(dma, alloc.iovaOf(buf));
    EXPECT_EQ(ctx.stats.get("damn.map_hits"), 1u);
    // Unmap is a no-op: the mapping survives.
    api.unmap(c, nic, dma, 2048, dma::Dir::FromDevice);
    EXPECT_TRUE(mmu.translate(nic.domain(), dma, true).ok);
    alloc.damnFree(c, buf);
}

TEST_F(InterposeFixture, NonDamnBufferFallsBack)
{
    auto c = cpu();
    const mem::Pa kbuf = heap.kmalloc(512);
    const iommu::Iova dma =
        api.map(c, nic, kbuf, 512, dma::Dir::ToDevice);
    EXPECT_FALSE(isDamnIova(dma));
    EXPECT_TRUE(mmu.translate(nic.domain(), dma, false).ok);
    api.unmap(c, nic, dma, 512, dma::Dir::ToDevice);
    // Fallback is strict: unmapped means gone.
    EXPECT_TRUE(mmu.translate(nic.domain(), dma, false).fault);
    heap.kfree(kbuf);
}

TEST_F(InterposeFixture, UnmapDispatchesOnMsb)
{
    auto c = cpu();
    const mem::Pa dbuf = alloc.damnAlloc(c, &nic, Rights::Read, 256);
    const mem::Pa kbuf = heap.kmalloc(256);
    const iommu::Iova d1 = api.map(c, nic, dbuf, 256, dma::Dir::ToDevice);
    const iommu::Iova d2 = api.map(c, nic, kbuf, 256, dma::Dir::ToDevice);
    std::vector<dma::DmaApi::UnmapReq> reqs = {
        {d1, 256, dma::Dir::ToDevice},
        {d2, 256, dma::Dir::ToDevice},
    };
    api.unmapBatch(c, nic, reqs);
    EXPECT_EQ(ctx.stats.get("damn.unmap_hits"), 1u);
    EXPECT_EQ(ctx.stats.get("dma.strict_invalidations"), 1u);
    alloc.damnFree(c, dbuf);
    heap.kfree(kbuf);
}

TEST_F(InterposeFixture, PropertiesAreDamnLevel)
{
    EXPECT_STREQ(api.name(), "damn");
    EXPECT_TRUE(api.subpage());
    EXPECT_TRUE(api.windowFree());
    EXPECT_TRUE(api.zeroCopy());
}

TEST_F(InterposeFixture, MapIsCheapForDamnBuffers)
{
    auto c = cpu();
    const mem::Pa buf = alloc.damnAlloc(c, &nic, Rights::Write, 4096);
    const sim::TimeNs t0 = c.time;
    api.map(c, nic, buf, 4096, dma::Dir::FromDevice);
    const sim::TimeNs map_cost = c.time - t0;
    EXPECT_LE(map_cost, 3 * ctx.cost.damnMapLookupNs);
    alloc.damnFree(c, buf);
}
