/**
 * @file
 * Randomized differential tests: the substrates checked against
 * simple reference models over long random operation sequences, plus
 * the chaos-harness tests (src/fuzz): determinism, the clean matrix
 * smoke, the injected-bug oracle self-check + shrinking, and the .dfz
 * corpus round-trip.  All generators draw from the shared fuzz::Rng.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

#include "exp/json.hh"
#include "fuzz/corpus.hh"
#include "fuzz/harness.hh"
#include "fuzz/rng.hh"
#include "fuzz/shrink.hh"
#include "iommu/backend_smmu.hh"
#include "iommu/iommu.hh"
#include "iommu/iotlb.hh"
#include "mem/kmalloc.hh"
#include "sim/context.hh"

using namespace damn;

// ---------------------------------------------------------------------
// I/O page table vs a std::map reference
// ---------------------------------------------------------------------

TEST(FuzzPageTable, MatchesReferenceModel)
{
    iommu::IoPageTable pt;
    std::map<iommu::Iova, std::pair<mem::Pa, std::uint32_t>> ref;
    fuzz::Rng rng(101);

    for (int step = 0; step < 20000; ++step) {
        const iommu::Iova iova =
            (rng.below(4096) << 12) | (rng.below(4) << 30);
        const int op = int(rng.below(3));
        if (op == 0) {
            const mem::Pa pa = rng.below(1 << 20) << 12;
            const auto perm = std::uint32_t(rng.between(1, 3));
            const bool ok = pt.map(iova, pa, perm);
            const bool ref_ok = ref.find(iova) == ref.end();
            ASSERT_EQ(ok, ref_ok) << "step " << step;
            if (ok)
                ref[iova] = {pa, perm};
        } else if (op == 1) {
            const bool ok = pt.unmap(iova);
            ASSERT_EQ(ok, ref.erase(iova) == 1) << "step " << step;
        } else {
            const iommu::WalkResult w =
                pt.walk(iova | rng.below(4096));
            const auto it = ref.find(iova);
            ASSERT_EQ(w.present, it != ref.end()) << "step " << step;
            if (w.present) {
                ASSERT_EQ(w.pa & ~0xfffull, it->second.first);
                ASSERT_EQ(w.perm, it->second.second);
            }
        }
    }
    ASSERT_EQ(pt.mapped4kEntries(), ref.size());
}

// ---------------------------------------------------------------------
// Buddy allocator invariants under random alloc/free
// ---------------------------------------------------------------------

TEST(FuzzBuddy, NoOverlapNoLeak)
{
    mem::PhysicalMemory pm(256ull << 20);
    mem::PageAllocator pa(pm, 2);
    fuzz::Rng rng(77);
    const std::uint64_t initial_free = pa.freeFrames();

    struct Block
    {
        mem::Pfn pfn;
        unsigned order;
    };
    std::vector<Block> live;

    for (int step = 0; step < 30000; ++step) {
        if (live.size() < 300 && rng.chance(0.55)) {
            const auto order = unsigned(rng.below(6));
            const mem::Pfn pfn =
                pa.allocPages(order, sim::NumaId(rng.below(2)));
            if (pfn == mem::kInvalidPfn)
                continue;
            // No overlap with any live block.
            for (const Block &b : live) {
                const bool disjoint =
                    pfn + (1ull << order) <= b.pfn ||
                    b.pfn + (1ull << b.order) <= pfn;
                ASSERT_TRUE(disjoint)
                    << "overlap at step " << step << ": " << pfn << "/"
                    << order << " vs " << b.pfn << "/" << b.order;
            }
            live.push_back({pfn, order});
        } else if (!live.empty()) {
            const auto idx = rng.below(live.size());
            pa.freePages(live[idx].pfn, live[idx].order);
            live.erase(live.begin() + long(idx));
        }
    }
    for (const Block &b : live)
        pa.freePages(b.pfn, b.order);
    EXPECT_EQ(pa.freeFrames(), initial_free) << "frames leaked";
    EXPECT_EQ(pa.allocatedFrames(), 0u);
}

// ---------------------------------------------------------------------
// kmalloc vs a reference multiset
// ---------------------------------------------------------------------

TEST(FuzzKmalloc, ContentIsolationAcrossObjects)
{
    mem::PhysicalMemory pm(128ull << 20);
    mem::PageAllocator pa(pm, 1);
    mem::KmallocHeap heap(pa);
    fuzz::Rng rng(55);

    // Every live object holds a distinct stamp; writes to one object
    // must never bleed into another.
    std::unordered_map<mem::Pa, std::pair<std::uint32_t, std::uint8_t>>
        live; // pa -> (size, stamp)
    std::uint8_t next_stamp = 1;

    for (int step = 0; step < 20000; ++step) {
        if (live.size() < 400 && rng.chance(0.55)) {
            const auto size = std::uint32_t(rng.between(1, 4096));
            const mem::Pa p = heap.kmalloc(size);
            ASSERT_NE(p, 0u);
            ASSERT_EQ(live.count(p), 0u) << "double allocation";
            pm.fill(p, next_stamp, size);
            live[p] = {size, next_stamp};
            next_stamp = std::uint8_t(next_stamp == 255 ? 1
                                                        : next_stamp + 1);
        } else if (!live.empty()) {
            auto it = live.begin();
            std::advance(it, long(rng.below(live.size())));
            // Verify the object is intact before freeing.
            const auto [size, stamp] = it->second;
            ASSERT_EQ(pm.readByte(it->first), stamp);
            ASSERT_EQ(pm.readByte(it->first + size - 1), stamp);
            heap.kfree(it->first);
            live.erase(it);
        }
    }
    for (const auto &[p, meta] : live) {
        ASSERT_EQ(pm.readByte(p), meta.second);
        heap.kfree(p);
    }
    EXPECT_EQ(heap.liveObjects(), 0u);
    EXPECT_EQ(heap.allocatedBytes(), 0u);
}

// ---------------------------------------------------------------------
// IOTLB never returns stale-after-invalidate translations
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Tracer ring buffer vs a per-core deque reference
// ---------------------------------------------------------------------

TEST(FuzzTracer, RingWrapMatchesReferenceModel)
{
    sim::Context ctx(sim::CostModel{}, 1, 4);
    fuzz::Rng rng(2024);

    for (const std::size_t cap : {std::size_t(1), std::size_t(2),
                                  std::size_t(7), std::size_t(64)}) {
        ctx.tracer.resetWindow();
        ctx.tracer.startRecording(cap);

        // Reference: each core keeps its newest `cap` events; every
        // displaced event is one drop.
        std::vector<std::deque<std::pair<sim::TimeNs, std::uint64_t>>>
            ref(4);
        std::uint64_t ref_drops = 0;
        std::uint64_t tag = 0;

        for (int step = 0; step < 5000; ++step) {
            const auto core = sim::CoreId(rng.below(4));
            const sim::TimeNs t = rng.below(100000);
            if (rng.chance(0.5)) {
                ctx.tracer.instant(core, sim::TraceCat::NicRing, "i",
                                   t, 0, tag);
            } else {
                ctx.tracer.span(core, sim::TraceCat::Copy, "s", t,
                                t + rng.below(100), 0, tag);
            }
            ref[core].emplace_back(t, tag);
            ++tag;
            if (ref[core].size() > cap) {
                ref[core].pop_front();
                ++ref_drops;
            }
        }

        EXPECT_EQ(ctx.tracer.droppedEvents(), ref_drops)
            << "cap " << cap;
        std::size_t ref_count = 0;
        for (const auto &d : ref)
            ref_count += d.size();
        EXPECT_EQ(ctx.tracer.bufferedEvents(), ref_count);

        // Tags increase in record order, so the expected merged order
        // is (t0, tag) — exactly the exporter's (t0, seq) sort.
        std::vector<std::pair<sim::TimeNs, std::uint64_t>> expect;
        for (const auto &d : ref)
            expect.insert(expect.end(), d.begin(), d.end());
        std::sort(expect.begin(), expect.end());

        const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
        ASSERT_EQ(b.events.size(), expect.size()) << "cap " << cap;
        for (std::size_t i = 0; i < expect.size(); ++i) {
            EXPECT_EQ(b.events[i].t0, expect[i].first)
                << "cap " << cap << " slot " << i;
            EXPECT_EQ(b.events[i].aux, expect[i].second)
                << "cap " << cap << " slot " << i;
        }
    }
}

// ---------------------------------------------------------------------
// The trace-JSON escaper round-trips adversarial strings
// ---------------------------------------------------------------------

TEST(FuzzJsonEscape, AdversarialStringsRoundTripThroughTheParser)
{
    // Targeted adversaries first: everything that could break a JSON
    // string literal or confuse a parser.
    const std::string cases[] = {
        "",
        "\"",
        "\\",
        "\\\\\"\"",
        "\"},{\"pid\":0}",
        std::string(1, '\0'),
        std::string("\0\x01\x02\x1f", 4),
        "\b\f\n\r\t",
        "]}\n{\"traceEvents\":[",
        "\xff\xfe high bytes \x80",
        "日本語 utf-8 passes through",
    };
    for (const std::string &s : cases) {
        const std::string wrapped = "\"" + sim::jsonEscape(s) + "\"";
        const exp::Json v = exp::Json::parse(wrapped);
        EXPECT_EQ(v.str(), s);
    }

    // Then random byte soup over the full 0..255 range.
    fuzz::Rng rng(404);
    for (int iter = 0; iter < 2000; ++iter) {
        const std::string s = rng.bytes(64);
        const std::string wrapped = "\"" + sim::jsonEscape(s) + "\"";
        const exp::Json v = exp::Json::parse(wrapped);
        ASSERT_EQ(v.str(), s) << "iter " << iter;
    }
}

TEST(FuzzJsonEscape, AdversarialEventNamesKeepTheTraceParseable)
{
    sim::Context ctx(sim::CostModel{}, 1, 2);
    fuzz::Rng rng(911);
    ctx.tracer.startRecording(256);
    std::vector<std::string> names;
    for (int i = 0; i < 64; ++i) {
        names.push_back(rng.bytes1(24));
        const std::string &name = names.back();
        // aux = i + 1 so every event serializes an args.aux tag
        // (zero-valued args are omitted from the JSON).
        ctx.tracer.instant(sim::CoreId(i % 2), sim::TraceCat::Other,
                           name, sim::TimeNs(i), 0, i + 1);
    }
    const sim::TraceBundle b = ctx.tracer.bundle(ctx.machine, 2.0);
    const std::string json =
        sim::chromeTraceJson({{"evil \"proc\"\n", &b}});
    const exp::Json doc = exp::Json::parse(json);
    const exp::Json *evs = doc.find("traceEvents");
    ASSERT_NE(evs, nullptr);
    ASSERT_EQ(evs->items().size(), 65u); // metadata + 64 instants
    for (std::size_t i = 1; i < evs->items().size(); ++i) {
        const exp::Json &ev = evs->items()[i];
        // aux identifies the original name regardless of sort order.
        const auto tag =
            std::size_t(ev.find("args")->find("aux")->asUint()) - 1;
        ASSERT_LT(tag, names.size());
        EXPECT_EQ(ev.find("name")->str(), names[tag]);
    }
}

TEST(FuzzIotlb, InvalidationIsComplete)
{
    iommu::Iotlb tlb(16, 2, 4, 2);
    fuzz::Rng rng(31);
    std::map<iommu::Iova, mem::Pa> truth;

    for (int step = 0; step < 20000; ++step) {
        const iommu::Iova page = rng.below(256) << 12;
        const int op = int(rng.below(4));
        if (op == 0) {
            iommu::WalkResult w;
            w.present = true;
            w.pa = rng.below(1024) << 12;
            w.perm = iommu::PermRW;
            tlb.insert(0, page, w);
            truth[page] = w.pa;
        } else if (op == 1) {
            tlb.invalidateRange(0, page, 4096);
            truth.erase(page);
        } else if (op == 2 && rng.chance(0.05)) {
            tlb.invalidateDomain(0);
            truth.clear();
        } else {
            const iommu::TlbEntry *e = tlb.lookup(0, page);
            if (e != nullptr) {
                // A hit must reflect a still-valid insertion.
                auto it = truth.find(page);
                ASSERT_NE(it, truth.end())
                    << "stale IOTLB entry at step " << step;
                ASSERT_EQ(e->paPage, it->second);
            }
        }
    }
}

// ---------------------------------------------------------------------
// SMMUv3 command queue under a randomized producer storm
// ---------------------------------------------------------------------

TEST(FuzzSmmuCmdq, ProducerStallStormStaysCoherent)
{
    // A 4-slot ring under a TLBI storm: the producer must stall (and
    // the stall must be counted), yet every CMD_SYNC still covers all
    // prior commands and time never runs backwards.
    sim::CostModel cm;
    cm.smmuCmdqDepth = 4;
    sim::Context ctx(cm, 1, 2);
    iommu::Iommu mmu(ctx, true, iommu::BackendKind::SmmuV3);
    auto &smmu = dynamic_cast<iommu::SmmuV3Backend &>(mmu.backend());
    const iommu::DomainId d = mmu.createDomain();

    fuzz::Rng rng(4242);
    sim::TimeNs t = 0;
    for (int step = 0; step < 2000; ++step) {
        sim::Core &core = ctx.machine.core(sim::CoreId(rng.below(2)));
        const sim::TimeNs before = t;
        switch (rng.below(4)) {
          case 0:
            t = smmu.submitTlbiRange(core, t, d, rng.below(4096) << 12,
                                     4096);
            break;
          case 1:
            t = smmu.submitTlbiDomain(core, t, d);
            break;
          case 2:
            t = smmu.submitTlbiAll(core, t);
            break;
          default:
            t = smmu.sync(core, t);
            EXPECT_EQ(smmu.pendingCommands(), 0u) << "step " << step;
            break;
        }
        ASSERT_GE(t, before) << "time went backwards at step " << step;
    }
    t = smmu.sync(ctx.machine.core(0), t);
    EXPECT_EQ(smmu.pendingCommands(), 0u);
    EXPECT_GT(ctx.stats.get("smmu.cmdq_stalls"), 0ull)
        << "a 4-slot ring under a 2000-command storm must stall";
}

// ---------------------------------------------------------------------
// The chaos harness itself (src/fuzz)
// ---------------------------------------------------------------------

TEST(FuzzHarness, SameConfigIsBitIdentical)
{
    // The determinism contract everything else leans on: the same
    // (config, seed) yields the same digest, stats, and op count.
    for (const auto scheme : {dma::SchemeKind::Strict,
                              dma::SchemeKind::Damn}) {
        for (const iommu::BackendKind backend : fuzz::fuzzBackends()) {
            fuzz::FuzzConfig cfg;
            cfg.scheme = scheme;
            cfg.backend = backend;
            cfg.seed = 99;
            cfg.ops = 300;
            const fuzz::FuzzResult r1 = fuzz::run(cfg);
            const fuzz::FuzzResult r2 = fuzz::run(cfg);
            EXPECT_EQ(r1.digest, r2.digest)
                << dma::schemeKindName(scheme) << "/"
                << iommu::backendKindName(backend);
            EXPECT_EQ(r1.stats, r2.stats);
            EXPECT_EQ(r1.opsExecuted, r2.opsExecuted);
            EXPECT_EQ(r1.violated, r2.violated);
        }
    }
}

TEST(FuzzHarness, CleanMatrixSmoke)
{
    // Without the injected bug, every scheme x backend cell must come
    // out clean: no oracle violation and no watchdog stall.
    for (const dma::SchemeKind scheme : fuzz::fuzzSchemes()) {
        for (const iommu::BackendKind backend : fuzz::fuzzBackends()) {
            fuzz::FuzzConfig cfg;
            cfg.scheme = scheme;
            cfg.backend = backend;
            cfg.seed = 5;
            cfg.ops = 300;
            const fuzz::FuzzResult res = fuzz::run(cfg);
            EXPECT_FALSE(res.violated)
                << dma::schemeKindName(scheme) << "/"
                << iommu::backendKindName(backend) << ": "
                << res.violation.oracle << " — "
                << res.violation.detail;
            EXPECT_EQ(res.watchdogStalls, 0u);
            EXPECT_EQ(res.opsExecuted, cfg.ops);
        }
    }
}

TEST(FuzzHarness, InjectedStaleBugIsCaughtAndShrunk)
{
    // The oracle self-check: arm the IOTLB's dropped-invalidation hook
    // and the stale-translation oracle must fire; ddmin must then cut
    // the repro down to a handful of ops (the acceptance bound is 12).
    struct Cell
    {
        dma::SchemeKind scheme;
        iommu::BackendKind backend;
    };
    const Cell cells[] = {
        {dma::SchemeKind::Strict, iommu::BackendKind::Vtd},
        {dma::SchemeKind::Deferred, iommu::BackendKind::SmmuV3},
    };
    for (const Cell &cell : cells) {
        fuzz::FuzzConfig cfg;
        cfg.scheme = cell.scheme;
        cfg.backend = cell.backend;
        cfg.seed = 7;
        cfg.ops = 40;
        cfg.injectStaleBug = true;

        const fuzz::Sequence seq = fuzz::generate(cfg);
        const fuzz::FuzzResult res = fuzz::runSequence(cfg, seq);
        ASSERT_TRUE(res.violated)
            << dma::schemeKindName(cell.scheme) << "/"
            << iommu::backendKindName(cell.backend);
        EXPECT_EQ(res.violation.oracle, "stale-translation");

        const fuzz::ShrinkResult small =
            fuzz::shrink(cfg, seq, res.violation);
        EXPECT_LE(small.seq.size(), 12u)
            << "shrunk repro too large for "
            << dma::schemeKindName(cell.scheme);
        ASSERT_TRUE(small.result.violated);
        EXPECT_EQ(small.result.violation.oracle, "stale-translation");
        // Re-running the minimal repro reproduces it bit-identically.
        const fuzz::FuzzResult again = fuzz::runSequence(cfg, small.seq);
        EXPECT_EQ(again.digest, small.result.digest);
    }
}

TEST(FuzzHarness, InjectedDevTlbBugIsCaughtAndShrunk)
{
    // Same self-check for the device-TLB side: silently dropping ATS
    // invalidations must trip the stale-device-tlb oracle — which the
    // IOTLB oracle cannot see, since the ATC sits outside the IOMMU —
    // and shrink to a handful of ops on both backends.
    struct Cell
    {
        dma::SchemeKind scheme;
        iommu::BackendKind backend;
    };
    const Cell cells[] = {
        {dma::SchemeKind::Strict, iommu::BackendKind::Vtd},
        {dma::SchemeKind::Deferred, iommu::BackendKind::SmmuV3},
    };
    for (const Cell &cell : cells) {
        fuzz::FuzzConfig cfg;
        cfg.scheme = cell.scheme;
        cfg.backend = cell.backend;
        cfg.seed = 7;
        cfg.ops = 40;
        cfg.injectDevTlbBug = true;

        const fuzz::Sequence seq = fuzz::generate(cfg);
        const fuzz::FuzzResult res = fuzz::runSequence(cfg, seq);
        ASSERT_TRUE(res.violated)
            << dma::schemeKindName(cell.scheme) << "/"
            << iommu::backendKindName(cell.backend);
        EXPECT_EQ(res.violation.oracle, "stale-device-tlb");

        const fuzz::ShrinkResult small =
            fuzz::shrink(cfg, seq, res.violation);
        EXPECT_LE(small.seq.size(), 12u)
            << "shrunk repro too large for "
            << dma::schemeKindName(cell.scheme);
        ASSERT_TRUE(small.result.violated);
        EXPECT_EQ(small.result.violation.oracle, "stale-device-tlb");
        const fuzz::FuzzResult again = fuzz::runSequence(cfg, small.seq);
        EXPECT_EQ(again.digest, small.result.digest);
    }
}

TEST(FuzzCorpus, SerializeParseReplayRoundTrip)
{
    // A recorded run must survive text serialization and replay to the
    // same verdict — the .dfz regression-corpus contract.
    fuzz::FuzzConfig cfg;
    cfg.scheme = dma::SchemeKind::Deferred;
    cfg.backend = iommu::BackendKind::SmmuV3;
    cfg.seed = 3;
    cfg.ops = 30;
    const fuzz::Sequence seq = fuzz::generate(cfg);
    const fuzz::FuzzResult res = fuzz::runSequence(cfg, seq);

    fuzz::CorpusFile file;
    file.cfg = cfg;
    file.seq = seq;
    file.verdict = fuzz::verdictOf(res);

    const std::string text = fuzz::serializeCorpus(file);
    fuzz::CorpusFile parsed;
    std::string err;
    ASSERT_TRUE(fuzz::parseCorpus(text, &parsed, &err)) << err;
    EXPECT_EQ(parsed.cfg.scheme, file.cfg.scheme);
    EXPECT_EQ(parsed.cfg.backend, file.cfg.backend);
    EXPECT_EQ(parsed.cfg.seed, file.cfg.seed);
    EXPECT_EQ(parsed.cfg.injectStaleBug, file.cfg.injectStaleBug);
    EXPECT_EQ(parsed.seq, file.seq);
    EXPECT_EQ(parsed.verdict, file.verdict);

    const fuzz::ReplayOutcome replay = fuzz::replayCorpus(parsed);
    EXPECT_TRUE(replay.reproduced)
        << "recorded " << file.verdict << ", got " << replay.verdict;

    // Corrupted text must be rejected, not misparsed.
    EXPECT_FALSE(fuzz::parseCorpus(text + "bogus_key 1\n", &parsed,
                                   &err));
    EXPECT_FALSE(fuzz::parseCorpus("dfz 2\n", &parsed, &err));
}

TEST(FuzzCorpus, DevTlbInjectTokenRoundTripsAndReplays)
{
    // The stale-devtlb inject flag must survive serialization, and a
    // replayed devtlb repro must reproduce its recorded verdict.
    fuzz::FuzzConfig cfg;
    cfg.scheme = dma::SchemeKind::Strict;
    cfg.backend = iommu::BackendKind::Vtd;
    cfg.seed = 7;
    cfg.ops = 40;
    cfg.injectDevTlbBug = true;
    const fuzz::Sequence seq = fuzz::generate(cfg);
    const fuzz::FuzzResult res = fuzz::runSequence(cfg, seq);
    ASSERT_TRUE(res.violated);

    fuzz::CorpusFile file;
    file.cfg = cfg;
    file.seq = seq;
    file.verdict = fuzz::verdictOf(res);

    const std::string text = fuzz::serializeCorpus(file);
    EXPECT_NE(text.find("inject stale-devtlb"), std::string::npos);
    fuzz::CorpusFile parsed;
    std::string err;
    ASSERT_TRUE(fuzz::parseCorpus(text, &parsed, &err)) << err;
    EXPECT_TRUE(parsed.cfg.injectDevTlbBug);
    EXPECT_FALSE(parsed.cfg.injectStaleBug);
    EXPECT_EQ(parsed.seq, file.seq);
    EXPECT_EQ(parsed.verdict, "stale-device-tlb");

    const fuzz::ReplayOutcome replay = fuzz::replayCorpus(parsed);
    EXPECT_TRUE(replay.reproduced)
        << "recorded " << file.verdict << ", got " << replay.verdict;
}
