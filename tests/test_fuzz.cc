/**
 * @file
 * Randomized differential tests: the substrates checked against
 * simple reference models over long random operation sequences.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "iommu/iotlb.hh"
#include "mem/kmalloc.hh"
#include "sim/rng.hh"

using namespace damn;

// ---------------------------------------------------------------------
// I/O page table vs a std::map reference
// ---------------------------------------------------------------------

TEST(FuzzPageTable, MatchesReferenceModel)
{
    iommu::IoPageTable pt;
    std::map<iommu::Iova, std::pair<mem::Pa, std::uint32_t>> ref;
    sim::Rng rng(101);

    for (int step = 0; step < 20000; ++step) {
        const iommu::Iova iova =
            (rng.below(4096) << 12) | (rng.below(4) << 30);
        const int op = int(rng.below(3));
        if (op == 0) {
            const mem::Pa pa = rng.below(1 << 20) << 12;
            const auto perm = std::uint32_t(rng.between(1, 3));
            const bool ok = pt.map(iova, pa, perm);
            const bool ref_ok = ref.find(iova) == ref.end();
            ASSERT_EQ(ok, ref_ok) << "step " << step;
            if (ok)
                ref[iova] = {pa, perm};
        } else if (op == 1) {
            const bool ok = pt.unmap(iova);
            ASSERT_EQ(ok, ref.erase(iova) == 1) << "step " << step;
        } else {
            const iommu::WalkResult w =
                pt.walk(iova | rng.below(4096));
            const auto it = ref.find(iova);
            ASSERT_EQ(w.present, it != ref.end()) << "step " << step;
            if (w.present) {
                ASSERT_EQ(w.pa & ~0xfffull, it->second.first);
                ASSERT_EQ(w.perm, it->second.second);
            }
        }
    }
    ASSERT_EQ(pt.mapped4kEntries(), ref.size());
}

// ---------------------------------------------------------------------
// Buddy allocator invariants under random alloc/free
// ---------------------------------------------------------------------

TEST(FuzzBuddy, NoOverlapNoLeak)
{
    mem::PhysicalMemory pm(256ull << 20);
    mem::PageAllocator pa(pm, 2);
    sim::Rng rng(77);
    const std::uint64_t initial_free = pa.freeFrames();

    struct Block
    {
        mem::Pfn pfn;
        unsigned order;
    };
    std::vector<Block> live;

    for (int step = 0; step < 30000; ++step) {
        if (live.size() < 300 && rng.chance(0.55)) {
            const auto order = unsigned(rng.below(6));
            const mem::Pfn pfn =
                pa.allocPages(order, sim::NumaId(rng.below(2)));
            if (pfn == mem::kInvalidPfn)
                continue;
            // No overlap with any live block.
            for (const Block &b : live) {
                const bool disjoint =
                    pfn + (1ull << order) <= b.pfn ||
                    b.pfn + (1ull << b.order) <= pfn;
                ASSERT_TRUE(disjoint)
                    << "overlap at step " << step << ": " << pfn << "/"
                    << order << " vs " << b.pfn << "/" << b.order;
            }
            live.push_back({pfn, order});
        } else if (!live.empty()) {
            const auto idx = rng.below(live.size());
            pa.freePages(live[idx].pfn, live[idx].order);
            live.erase(live.begin() + long(idx));
        }
    }
    for (const Block &b : live)
        pa.freePages(b.pfn, b.order);
    EXPECT_EQ(pa.freeFrames(), initial_free) << "frames leaked";
    EXPECT_EQ(pa.allocatedFrames(), 0u);
}

// ---------------------------------------------------------------------
// kmalloc vs a reference multiset
// ---------------------------------------------------------------------

TEST(FuzzKmalloc, ContentIsolationAcrossObjects)
{
    mem::PhysicalMemory pm(128ull << 20);
    mem::PageAllocator pa(pm, 1);
    mem::KmallocHeap heap(pa);
    sim::Rng rng(55);

    // Every live object holds a distinct stamp; writes to one object
    // must never bleed into another.
    std::unordered_map<mem::Pa, std::pair<std::uint32_t, std::uint8_t>>
        live; // pa -> (size, stamp)
    std::uint8_t next_stamp = 1;

    for (int step = 0; step < 20000; ++step) {
        if (live.size() < 400 && rng.chance(0.55)) {
            const auto size = std::uint32_t(rng.between(1, 4096));
            const mem::Pa p = heap.kmalloc(size);
            ASSERT_NE(p, 0u);
            ASSERT_EQ(live.count(p), 0u) << "double allocation";
            pm.fill(p, next_stamp, size);
            live[p] = {size, next_stamp};
            next_stamp = std::uint8_t(next_stamp == 255 ? 1
                                                        : next_stamp + 1);
        } else if (!live.empty()) {
            auto it = live.begin();
            std::advance(it, long(rng.below(live.size())));
            // Verify the object is intact before freeing.
            const auto [size, stamp] = it->second;
            ASSERT_EQ(pm.readByte(it->first), stamp);
            ASSERT_EQ(pm.readByte(it->first + size - 1), stamp);
            heap.kfree(it->first);
            live.erase(it);
        }
    }
    for (const auto &[p, meta] : live) {
        ASSERT_EQ(pm.readByte(p), meta.second);
        heap.kfree(p);
    }
    EXPECT_EQ(heap.liveObjects(), 0u);
    EXPECT_EQ(heap.allocatedBytes(), 0u);
}

// ---------------------------------------------------------------------
// IOTLB never returns stale-after-invalidate translations
// ---------------------------------------------------------------------

TEST(FuzzIotlb, InvalidationIsComplete)
{
    iommu::Iotlb tlb(16, 2, 4, 2);
    sim::Rng rng(31);
    std::map<iommu::Iova, mem::Pa> truth;

    for (int step = 0; step < 20000; ++step) {
        const iommu::Iova page = rng.below(256) << 12;
        const int op = int(rng.below(4));
        if (op == 0) {
            iommu::WalkResult w;
            w.present = true;
            w.pa = rng.below(1024) << 12;
            w.perm = iommu::PermRW;
            tlb.insert(0, page, w);
            truth[page] = w.pa;
        } else if (op == 1) {
            tlb.invalidateRange(0, page, 4096);
            truth.erase(page);
        } else if (op == 2 && rng.chance(0.05)) {
            tlb.invalidateDomain(0);
            truth.clear();
        } else {
            const iommu::TlbEntry *e = tlb.lookup(0, page);
            if (e != nullptr) {
                // A hit must reflect a still-valid insertion.
                auto it = truth.find(page);
                ASSERT_NE(it, truth.end())
                    << "stale IOTLB entry at step " << step;
                ASSERT_EQ(e->paPage, it->second);
            }
        }
    }
}
