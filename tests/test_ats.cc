/**
 * @file
 * ATS/PRI conformance tests, parameterized over both IOMMU backends:
 * device-TLB (ATC) caching and staleness, the fault -> service ->
 * resume ordering, page-request-queue overflow auto-responses, ATS
 * invalidation vs the regular flush entry points (including the
 * SMMUv3 CMD_ATC_INV-pending-until-CMD_SYNC race), and the faulting
 * RDMA workload end to end.
 */

#include <gtest/gtest.h>

#include "dma/device.hh"
#include "dma/faultable.hh"
#include "iommu/ats.hh"
#include "iommu/backend_smmu.hh"
#include "iommu/backend_vtd.hh"
#include "iommu/iommu.hh"
#include "iommu/sva.hh"
#include "sim/fault_injector.hh"
#include "workloads/rdma.hh"

using namespace damn;
using namespace damn::iommu;

namespace {

/**
 * Both backends with tiny PRI queues (depth 4), so overflow is
 * reachable, plus backing memory for the SVA / faultable-DMA tests.
 */
class AtsConformance : public ::testing::TestWithParam<BackendKind>
{
  protected:
    static sim::CostModel
    tiny()
    {
        sim::CostModel cm;
        cm.vtdPrqDepth = 4;
        cm.smmuStallDepth = 4;
        return cm;
    }

    AtsConformance()
        : ctx(tiny(), 1, 2), mmu(ctx, true, GetParam()),
          pm(64ull << 20), alloc(pm, 1)
    {}

    sim::Core &core() { return ctx.machine.core(0); }

    sim::Context ctx;
    Iommu mmu;
    mem::PhysicalMemory pm;
    mem::PageAllocator alloc;
};

} // namespace

INSTANTIATE_TEST_SUITE_P(
    Backends, AtsConformance,
    ::testing::Values(BackendKind::Vtd, BackendKind::SmmuV3),
    [](const ::testing::TestParamInfo<BackendKind> &p) {
        return std::string(backendKindName(p.param)) == "vtd" ? "vtd"
                                                              : "smmuv3";
    });

TEST_P(AtsConformance, DevTlbCachesTranslations)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    ASSERT_TRUE(mmu.mapPage(d, 0x5000, 0x9000, PermRW));

    const AtsAgent::Result miss = ats.translate(0x5123, true);
    EXPECT_TRUE(miss.ok);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.pa, 0x9123u);

    const AtsAgent::Result hit = ats.translate(0x5456, false);
    EXPECT_TRUE(hit.ok);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.pa, 0x9456u);
    EXPECT_LT(hit.latencyNs, miss.latencyNs);
    EXPECT_EQ(ats.hits(), 1u);
    EXPECT_EQ(ats.misses(), 1u);
}

TEST_P(AtsConformance, TranslateMissIsPriRetryNotFault)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    EXPECT_FALSE(ats.translate(0xdead000, true).ok);
    // Permission splits count too: read-only page, write access.
    ASSERT_TRUE(mmu.mapPage(d, 0x5000, 0x9000, PermRead));
    EXPECT_FALSE(ats.translate(0x5000, true).ok);
    EXPECT_TRUE(ats.translate(0x5000, false).ok);
    // Neither miss was a recorded IOMMU fault — PRI retries instead.
    EXPECT_EQ(mmu.faults(), 0u);
}

TEST_P(AtsConformance, IotlbFlushLeavesAtcStaleUntilAtsInvalidate)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    ASSERT_TRUE(ats.translate(0x5000, true).ok);

    mmu.unmapPage(d, 0x5000);
    mmu.backend().syncInvalidate(core(), 0, d, 0x5000, 4096);
    // The IOTLB flush never reaches the device: the ATC still serves
    // the (now stale) translation — the extra window ATS opens.
    const AtsAgent::Result stale = ats.translate(0x5000, true);
    EXPECT_TRUE(stale.ok);
    EXPECT_TRUE(stale.hit);
    EXPECT_EQ(ats.entries(), 1u);

    // Only the explicit device-TLB invalidation verb closes it.
    mmu.backend().atsInvalidate(core(), 0, ats, d, 0x5000, 4096);
    EXPECT_EQ(ats.entries(), 0u);
    EXPECT_FALSE(ats.translate(0x5000, true).ok);
}

TEST_P(AtsConformance, AtsInvalidateAllClearsEveryEntry)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    for (Iova va = 0x5000; va < 0x9000; va += 0x1000) {
        mmu.mapPage(d, va, 0x10000 + va, PermRW);
        ASSERT_TRUE(ats.translate(va, true).ok);
    }
    EXPECT_EQ(ats.entries(), 4u);
    const sim::TimeNs done =
        mmu.backend().atsInvalidateAll(core(), 0, ats, d);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(ats.entries(), 0u);
}

TEST_P(AtsConformance, DroppedAtsInvalidationLeavesStaleAtc)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    ats.translate(0x5000, true);
    mmu.unmapPage(d, 0x5000);

    ctx.faults.enable(13);
    ctx.faults.failNth(sim::FaultSite::IommuInval, 1);
    mmu.backend().atsInvalidate(core(), 0, ats, d, 0x5000, 4096);
    // VT-d drops the device-TLB inval descriptor; SMMUv3 drops the
    // CMD_ATC_INV batch at its CMD_SYNC.  Either way: stale entry.
    EXPECT_EQ(ats.entries(), 1u);
    EXPECT_EQ(ctx.stats.get("iommu.inval_dropped"), 1u);
    // The next (uninjected) invalidation clears it.
    mmu.backend().atsInvalidate(core(), 0, ats, d, 0x5000, 4096);
    EXPECT_EQ(ats.entries(), 0u);
}

TEST_P(AtsConformance, FaultServiceResumeOrdering)
{
    SvaDomain sva(ctx, mmu, alloc);
    AtsAgent ats(ctx, mmu, sva.domain());
    const Iova va = 0x7f0000000000ull;

    // Device stalls: no translation yet, so it posts a page request.
    EXPECT_FALSE(ats.translate(va, true).ok);
    ASSERT_TRUE(mmu.backend().postPageRequest(
        {sva.domain(), va, true, 0, 100}));
    EXPECT_EQ(mmu.backend().pendingPageRequests(), 1u);

    // OS fetches and services: the page becomes resident and mapped,
    // and the response completes strictly after the request.
    const auto reqs = mmu.backend().fetchPageRequests();
    ASSERT_EQ(reqs.size(), 1u);
    sim::CpuCursor cpu(core(), 200);
    EXPECT_TRUE(sva.servicePageRequest(cpu, reqs[0], &ats));
    EXPECT_GT(cpu.time, reqs[0].time);
    EXPECT_TRUE(sva.resident(va));
    EXPECT_EQ(sva.faultsServiced(), 1u);

    // Resume: the retried translation now succeeds and fills the ATC.
    const AtsAgent::Result r = ats.translate(va, true);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pa, sva.paOf(va));
    EXPECT_EQ(mmu.backend().pageRequestsResponded(), 1u);
}

TEST_P(AtsConformance, PrqOverflowAutoResponds)
{
    SvaDomain sva(ctx, mmu, alloc);
    const Iova base = 0x7f0000000000ull;

    // Depth is 4 (tiny cost model): posts 5 and 6 must auto-respond.
    for (std::uint32_t i = 0; i < 6; ++i) {
        const bool accepted = mmu.backend().postPageRequest(
            {sva.domain(), base + Iova(i) * 0x1000, true, i, 0});
        EXPECT_EQ(accepted, i < 4) << "post " << i;
    }
    IommuBackend &be = mmu.backend();
    EXPECT_EQ(be.pendingPageRequests(), 4u);
    EXPECT_EQ(be.pageRequestsPosted(), 6u);
    EXPECT_EQ(be.pageRequestAutoResponses(), 2u);
    EXPECT_EQ(be.pageRequestMaxDepth(), 4u);

    if (auto *vtd = dynamic_cast<VtdBackend *>(&be)) {
        // VT-d surfaces the condition architecturally: PRQ head/tail
        // diverge and the sticky overflow bit is set...
        EXPECT_TRUE(vtd->prsPending());
        EXPECT_TRUE(vtd->prsOverflow());
        EXPECT_EQ(vtd->prqTail() - vtd->prqHead(), 4u);
    }

    // ...until the OS drains the queue, which clears both.
    EXPECT_EQ(be.fetchPageRequests().size(), 4u);
    EXPECT_EQ(be.pendingPageRequests(), 0u);
    EXPECT_EQ(be.pageRequestsFetched(), 4u);
    if (auto *vtd = dynamic_cast<VtdBackend *>(&be)) {
        EXPECT_FALSE(vtd->prsPending());
        EXPECT_FALSE(vtd->prsOverflow());
    }
    // The conservation law the fuzzer's pri-conservation oracle pins.
    EXPECT_EQ(be.pageRequestsPosted(),
              be.pageRequestAutoResponses() +
                  be.pendingPageRequests() + be.pageRequestsFetched());
}

TEST_P(AtsConformance, SvaResidentLimitEvictsLru)
{
    SvaDomain sva(ctx, mmu, alloc, /*residentLimitPages=*/2);
    AtsAgent ats(ctx, mmu, sva.domain());
    sim::CpuCursor cpu(core(), 0);
    const Iova base = 0x7f0000000000ull;

    for (unsigned i = 0; i < 3; ++i)
        EXPECT_TRUE(sva.handleFault(cpu, base + Iova(i) * 0x1000,
                                    true, &ats));
    EXPECT_EQ(sva.residentPages(), 2u);
    EXPECT_EQ(sva.evictions(), 1u);
    // Page 0 was the LRU victim: unmapped, ATS-invalidated, freed.
    EXPECT_FALSE(sva.resident(base));
    EXPECT_TRUE(sva.resident(base + 0x2000));
    EXPECT_FALSE(ats.translate(base, true).ok);
}

TEST_P(AtsConformance, FaultableDmaFaultsInAndCompletes)
{
    SvaDomain sva(ctx, mmu, alloc);
    AtsAgent ats(ctx, mmu, sva.domain());
    dma::Device dev(ctx, "ats0", mmu, pm);
    sim::CpuCursor cpu(core(), 0);
    const Iova va = 0x7f0000000000ull;

    std::vector<std::uint8_t> payload(3 * mem::kPageSize + 17, 0xa5);
    const dma::FaultableDmaResult w = dma::faultableDma(
        cpu, dev, ats, sva, va, payload.data(), payload.size(),
        /*is_write=*/true);
    EXPECT_TRUE(w.ok);
    EXPECT_EQ(w.bytesDone, payload.size());
    EXPECT_EQ(w.faultsServiced, 4u);
    EXPECT_GT(w.serviceNsTotal, 0u);

    // Read back through a second faultable DMA: all resident now, so
    // zero faults — and the bytes round-trip.
    std::vector<std::uint8_t> readback(payload.size(), 0);
    const dma::FaultableDmaResult r = dma::faultableDma(
        cpu, dev, ats, sva, va, readback.data(), readback.size(),
        /*is_write=*/false);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.faultsServiced, 0u);
    EXPECT_EQ(readback, payload);
}

TEST_P(AtsConformance, RdmaWorkloadServicesFaultsDeterministically)
{
    work::RdmaOpts o;
    o.scheme = dma::SchemeKind::Strict;
    o.footprintBytes = 1ull << 20;
    o.seed = 42;
    o.runWindow = {sim::kNsPerMs, 2 * sim::kNsPerMs};
    o.sysParams.backend = GetParam();
    const work::RdmaResult a = work::runRdma(o);
    const work::RdmaResult b = work::runRdma(o);

    EXPECT_GT(a.faultsServiced, 0u);
    EXPECT_GT(a.messages, 0u);
    EXPECT_GT(a.prqMaxDepth, 0u);
    EXPECT_GT(a.avgFaultServiceNs, 0.0);
    EXPECT_EQ(a.messages, b.messages);
    EXPECT_EQ(a.faultsServiced, b.faultsServiced);
    EXPECT_EQ(a.common.stats, b.common.stats);
}

// ---------------------------------------------------------------------
// SMMUv3-specific: CMD_ATC_INV is pending until CMD_SYNC.
// ---------------------------------------------------------------------

namespace {

struct SmmuAtsFixture : ::testing::Test
{
    SmmuAtsFixture()
        : ctx(sim::CostModel{}, 1, 2),
          mmu(ctx, true, BackendKind::SmmuV3),
          smmu(dynamic_cast<SmmuV3Backend &>(mmu.backend()))
    {}

    sim::Context ctx;
    Iommu mmu;
    SmmuV3Backend &smmu;
};

} // namespace

TEST_F(SmmuAtsFixture, AtcInvPendingUntilCmdSync)
{
    const DomainId d = mmu.createDomain();
    AtsAgent ats(ctx, mmu, d);
    mmu.mapPage(d, 0x5000, 0x9000, PermRW);
    ats.translate(0x5000, true);
    mmu.unmapPage(d, 0x5000);

    // CMD_ATC_INV alone does nothing observable: the ATC entry stays
    // visible until the covering CMD_SYNC completes — the ordering
    // race the fuzzer's Sync op and this suite both pin.
    const sim::TimeNs t =
        smmu.submitAtcInvRange(ctx.machine.core(0), 0, ats, 0x5000,
                               4096);
    EXPECT_EQ(ats.entries(), 1u);
    EXPECT_GE(smmu.pendingCommands(), 1u);
    smmu.sync(ctx.machine.core(0), t);
    EXPECT_EQ(ats.entries(), 0u);
    EXPECT_EQ(smmu.pendingCommands(), 0u);
}

TEST_F(SmmuAtsFixture, ResumeIsFireAndForget)
{
    // A stalled transaction is a stall event; CMD_RESUME is produced
    // into the command queue without a trailing CMD_SYNC (the device
    // retries whenever it retries — resume needs no ordering).
    const DomainId d = mmu.createDomain();
    ASSERT_TRUE(smmu.postPageRequest({d, 0x7000, true, 0, 0}));
    EXPECT_EQ(ctx.stats.get("smmu.stall_events"), 1u);
    const auto reqs = smmu.fetchPageRequests();
    ASSERT_EQ(reqs.size(), 1u);
    const sim::TimeNs done =
        smmu.respondPageRequest(ctx.machine.core(0), 50, reqs[0], true);
    EXPECT_GT(done, 50u);
    EXPECT_EQ(ctx.stats.get("smmu.cmd_resumes"), 1u);
    EXPECT_EQ(smmu.pageRequestsResponded(), 1u);
}
