/**
 * @file
 * Unit tests for the memory substrate: physical memory, buddy page
 * allocator, kmalloc slab, page-frag allocator.
 */

#include <gtest/gtest.h>

#include "mem/kmalloc.hh"
#include "mem/page_frag.hh"
#include "sim/context.hh"
#include "sim/cpu_cursor.hh"

using namespace damn;
using namespace damn::mem;

namespace {

constexpr std::uint64_t kMiB = 1ull << 20;

struct MemFixture : ::testing::Test
{
    MemFixture() : pm(64 * kMiB), pa(pm, 2), heap(pa) {}

    PhysicalMemory pm;
    PageAllocator pa;
    KmallocHeap heap;
};

} // namespace

// ---------------------------------------------------------------------
// PhysicalMemory
// ---------------------------------------------------------------------

TEST(PhysicalMemory, ReadBackWhatWasWritten)
{
    PhysicalMemory pm(4 * kMiB);
    const char msg[] = "damn: dma-aware malloc";
    pm.write(0x1234, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    pm.read(0x1234, out, sizeof(msg));
    EXPECT_STREQ(out, msg);
}

TEST(PhysicalMemory, CrossPageAccess)
{
    PhysicalMemory pm(4 * kMiB);
    std::vector<std::uint8_t> data(3 * kPageSize);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = std::uint8_t(i * 7);
    const Pa base = 2 * kPageSize - 100; // straddles 3 frames
    pm.write(base, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    pm.read(base, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(PhysicalMemory, UnwrittenReadsAsZero)
{
    PhysicalMemory pm(4 * kMiB);
    std::uint8_t b = 0xff;
    pm.read(123456, &b, 1);
    EXPECT_EQ(b, 0);
    // Reading must not back frames.
    EXPECT_EQ(pm.backedFrames(), 0u);
}

TEST(PhysicalMemory, LazyBacking)
{
    PhysicalMemory pm(64 * kMiB);
    EXPECT_EQ(pm.backedFrames(), 0u);
    pm.writeByte(5 * kPageSize, 1);
    pm.writeByte(9 * kPageSize, 1);
    EXPECT_EQ(pm.backedFrames(), 2u);
}

TEST(PhysicalMemory, FillAndCopy)
{
    PhysicalMemory pm(4 * kMiB);
    pm.fill(0x2000, 0x5a, 8192);
    EXPECT_EQ(pm.readByte(0x2000), 0x5a);
    EXPECT_EQ(pm.readByte(0x2000 + 8191), 0x5a);
    pm.copy(0x10000, 0x2000, 8192);
    EXPECT_EQ(pm.readByte(0x10000), 0x5a);
    EXPECT_EQ(pm.readByte(0x10000 + 8191), 0x5a);
}

TEST(PhysicalMemory, PageStructLookup)
{
    PhysicalMemory pm(4 * kMiB);
    Page &pg = pm.pageOf(3 * kPageSize + 17);
    EXPECT_EQ(pm.pfnOf(pg), 3u);
}

TEST(PhysicalMemory, PaPfnConversions)
{
    EXPECT_EQ(paToPfn(0x5123), 5u);
    EXPECT_EQ(pfnToPa(5), 5 * kPageSize);
    EXPECT_EQ(pageOffset(0x5123), 0x123u);
}

TEST(PageStruct, FlagOps)
{
    Page p;
    EXPECT_FALSE(p.test(PG_head));
    p.set(PG_head);
    p.set(PG_damn);
    EXPECT_TRUE(p.test(PG_head));
    EXPECT_TRUE(p.test(PG_damn));
    p.clearFlag(PG_head);
    EXPECT_FALSE(p.test(PG_head));
    EXPECT_TRUE(p.test(PG_damn));
}

// ---------------------------------------------------------------------
// PageAllocator (buddy)
// ---------------------------------------------------------------------

TEST_F(MemFixture, AllocReturnsAlignedBlocks)
{
    for (unsigned order = 0; order <= PageAllocator::kMaxOrder;
         ++order) {
        const Pfn pfn = pa.allocPages(order, 0);
        ASSERT_NE(pfn, kInvalidPfn);
        EXPECT_EQ(pfn % (1ull << order), 0u)
            << "order " << order << " block misaligned";
        pa.freePages(pfn, order);
    }
}

TEST_F(MemFixture, FrameZeroIsReserved)
{
    // Many allocations never return pfn 0 (the null page).
    for (int i = 0; i < 64; ++i) {
        const Pfn pfn = pa.allocPages(0, 0);
        EXPECT_NE(pfn, 0u);
    }
}

TEST_F(MemFixture, DistinctBlocksDoNotOverlap)
{
    std::vector<Pfn> blocks;
    for (int i = 0; i < 32; ++i)
        blocks.push_back(pa.allocPages(2, 0));
    std::sort(blocks.begin(), blocks.end());
    for (std::size_t i = 1; i < blocks.size(); ++i)
        EXPECT_GE(blocks[i], blocks[i - 1] + 4);
    for (const Pfn b : blocks)
        pa.freePages(b, 2);
}

TEST_F(MemFixture, FreeCoalescesBackToMaxOrder)
{
    const std::uint64_t before = pa.freeFrames();
    std::vector<Pfn> ones;
    for (int i = 0; i < 1024; ++i)
        ones.push_back(pa.allocPages(0, 0));
    for (const Pfn p : ones)
        pa.freePages(p, 0);
    EXPECT_EQ(pa.freeFrames(), before);
    // After full coalescing a max-order block must be allocatable.
    const Pfn big = pa.allocPages(PageAllocator::kMaxOrder, 0);
    EXPECT_NE(big, kInvalidPfn);
    pa.freePages(big, PageAllocator::kMaxOrder);
}

TEST_F(MemFixture, NumaPreferenceHonored)
{
    const Pfn p0 = pa.allocPages(0, 0);
    const Pfn p1 = pa.allocPages(0, 1);
    EXPECT_EQ(pa.nodeOf(p0), 0u);
    EXPECT_EQ(pa.nodeOf(p1), 1u);
    pa.freePages(p0, 0);
    pa.freePages(p1, 0);
}

TEST_F(MemFixture, FallsBackToRemoteNode)
{
    // Exhaust node 0 entirely, then ask for node-0 memory.
    std::vector<Pfn> hog;
    while (pa.freeFramesInZone(0) > 0) {
        const Pfn p = pa.allocPages(PageAllocator::kMaxOrder, 0);
        if (pa.nodeOf(p) != 0) {
            pa.freePages(p, PageAllocator::kMaxOrder);
            break;
        }
        hog.push_back(p);
    }
    const Pfn p = pa.allocPages(0, 0);
    ASSERT_NE(p, kInvalidPfn);
    EXPECT_EQ(pa.nodeOf(p), 1u);
    pa.freePages(p, 0);
    for (const Pfn h : hog)
        pa.freePages(h, PageAllocator::kMaxOrder);
}

TEST_F(MemFixture, ExhaustionReturnsInvalid)
{
    std::vector<Pfn> hog;
    for (;;) {
        const Pfn p = pa.allocPages(PageAllocator::kMaxOrder, 0);
        if (p == kInvalidPfn)
            break;
        hog.push_back(p);
    }
    // Smaller blocks may still exist (the reserved split), but after
    // draining order-0 too the allocator must fail cleanly.
    for (;;) {
        const Pfn p = pa.allocPages(0, 0);
        if (p == kInvalidPfn)
            break;
        hog.push_back(p); // order recorded below via page order
    }
    EXPECT_EQ(pa.allocPages(0, 0), kInvalidPfn);
    EXPECT_EQ(pa.freeFrames(), 0u);
    // Cleanup: we cannot distinguish orders here; rebuild fixture
    // implicitly by leaking into the fixture-local allocator.
}

TEST_F(MemFixture, AllocatedFramesAccounting)
{
    const std::uint64_t base = pa.allocatedFrames();
    const Pfn a = pa.allocPages(3, 0);
    EXPECT_EQ(pa.allocatedFrames(), base + 8);
    pa.freePages(a, 3);
    EXPECT_EQ(pa.allocatedFrames(), base);
}

TEST_F(MemFixture, ZeroedAllocation)
{
    const Pfn dirty = pa.allocPages(0, 0);
    pm.fill(pfnToPa(dirty), 0xdd, kPageSize);
    pa.freePages(dirty, 0);
    const Pfn clean = pa.allocPages(0, 0, /*zero=*/true);
    EXPECT_EQ(clean, dirty); // buddy hands back the same block
    EXPECT_EQ(pm.readByte(pfnToPa(clean)), 0);
    EXPECT_EQ(pm.readByte(pfnToPa(clean) + kPageSize - 1), 0);
    pa.freePages(clean, 0);
}

TEST_F(MemFixture, FreeClearsPageMetadata)
{
    const Pfn p = pa.allocPages(1, 0);
    Page &pg = pm.page(p + 1);
    pg.set(PG_damn);
    pg.priv = 123;
    pa.freePages(p, 1);
    EXPECT_FALSE(pm.page(p + 1).test(PG_damn));
    EXPECT_EQ(pm.page(p + 1).priv, 0u);
}

// ---------------------------------------------------------------------
// KmallocHeap
// ---------------------------------------------------------------------

TEST_F(MemFixture, KmallocClassRounding)
{
    EXPECT_EQ(KmallocHeap::classFor(1), 0u);
    EXPECT_EQ(KmallocHeap::classFor(8), 0u);
    EXPECT_EQ(KmallocHeap::classFor(9), 1u);
    EXPECT_EQ(KmallocHeap::classFor(4096), 9u);
}

TEST_F(MemFixture, KmallocAligned)
{
    for (int i = 0; i < 16; ++i) {
        const Pa p = heap.kmalloc(24);
        EXPECT_EQ(p % 8, 0u);
    }
}

TEST_F(MemFixture, KmallocCoLocatesOnOnePage)
{
    // The property the paper's partial-protection critique rests on:
    // unrelated same-class objects share a physical page.
    const Pa a = heap.kmalloc(256);
    const Pa b = heap.kmalloc(256);
    EXPECT_EQ(paToPfn(a), paToPfn(b));
    EXPECT_EQ(b, a + 256); // adjacent, ascending
    heap.kfree(a);
    heap.kfree(b);
}

TEST_F(MemFixture, KfreeLifoReuse)
{
    const Pa a = heap.kmalloc(512);
    heap.kfree(a);
    EXPECT_EQ(heap.kmalloc(512), a);
}

TEST_F(MemFixture, KmallocAccounting)
{
    EXPECT_EQ(heap.allocatedBytes(), 0u);
    const Pa a = heap.kmalloc(100); // class 128
    EXPECT_EQ(heap.allocatedBytes(), 128u);
    EXPECT_EQ(heap.liveObjects(), 1u);
    heap.kfree(a);
    EXPECT_EQ(heap.allocatedBytes(), 0u);
    EXPECT_EQ(heap.liveObjects(), 0u);
}

TEST_F(MemFixture, KmallocSlabPageFlagged)
{
    const Pa a = heap.kmalloc(64);
    EXPECT_TRUE(pm.pageOf(a).test(PG_slab));
    EXPECT_EQ(pm.pageOf(a).slabClass, KmallocHeap::classFor(64));
    heap.kfree(a);
}

TEST_F(MemFixture, KfreeNullIsNoop)
{
    heap.kfree(0);
    EXPECT_EQ(heap.liveObjects(), 0u);
}

TEST_F(MemFixture, KmallocManyClassesIndependent)
{
    std::vector<Pa> ptrs;
    for (const std::uint32_t sz : KmallocHeap::kClasses)
        ptrs.push_back(heap.kmalloc(sz));
    // All distinct and correctly typed.
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
        for (std::size_t j = i + 1; j < ptrs.size(); ++j)
            EXPECT_NE(ptrs[i], ptrs[j]);
        EXPECT_EQ(pm.pageOf(ptrs[i]).slabClass, i);
    }
    for (const Pa p : ptrs)
        heap.kfree(p);
}

TEST_F(MemFixture, KmallocFillsWholePageBeforeNewOne)
{
    std::vector<Pa> objs;
    for (unsigned i = 0; i < kPageSize / 1024; ++i)
        objs.push_back(heap.kmalloc(1024));
    const Pfn first = paToPfn(objs[0]);
    for (const Pa p : objs)
        EXPECT_EQ(paToPfn(p), first);
    objs.push_back(heap.kmalloc(1024));
    EXPECT_NE(paToPfn(objs.back()), first);
    for (const Pa p : objs)
        heap.kfree(p);
}

// ---------------------------------------------------------------------
// PageFragAllocator
// ---------------------------------------------------------------------

namespace {

struct FragFixture : ::testing::Test
{
    FragFixture()
        : ctx(sim::CostModel{}, 1, 2),
          pm(64 * kMiB),
          pa(pm, 1),
          frag(ctx, pa)
    {}

    sim::Context ctx;
    PhysicalMemory pm;
    PageAllocator pa;
    PageFragAllocator frag;
};

} // namespace

TEST_F(FragFixture, CarvesWithinOneBlock)
{
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    const Pa a = frag.alloc(cpu, 1000);
    const Pa b = frag.alloc(cpu, 1000);
    EXPECT_EQ(b, a + 1000);
}

TEST_F(FragFixture, BlockFreedWhenLastFragDropped)
{
    sim::CpuCursor cpu(ctx.machine.core(0), 0);
    const std::uint64_t base = pa.allocatedFrames();
    const Pa a = frag.alloc(cpu, 16384);
    const Pa b = frag.alloc(cpu, 16384);
    EXPECT_GT(pa.allocatedFrames(), base);
    frag.free(cpu, a);
    frag.free(cpu, b);
    // Block is still biased by the allocator (current bump block).
    // Exhaust it to trigger retirement.
    std::vector<Pa> more;
    for (int i = 0; i < 64; ++i)
        more.push_back(frag.alloc(cpu, 16384));
    for (const Pa p : more)
        frag.free(cpu, p);
    EXPECT_LE(pa.allocatedFrames(),
              base + (1ull << PageFragAllocator::kBlockOrder));
}

TEST_F(FragFixture, PerCoreIsolation)
{
    sim::CpuCursor c0(ctx.machine.core(0), 0);
    sim::CpuCursor c1(ctx.machine.core(1), 0);
    const Pa a = frag.alloc(c0, 4096);
    const Pa b = frag.alloc(c1, 4096);
    // Different cores carve from different blocks.
    EXPECT_NE(paToPfn(a) >> PageFragAllocator::kBlockOrder,
              paToPfn(b) >> PageFragAllocator::kBlockOrder);
    frag.free(c0, a);
    frag.free(c1, b);
}
