/**
 * @file
 * Figure 6: throughput and memory bandwidth in the multi-core
 * bidirectional netperf TCP_STREAM test (same run as figure 1; this
 * binary reports the memory-bandwidth series).
 *
 * Paper reference points: shadow buffers drive memory bandwidth to
 * ~80 GB/s — the advertised limit of the memory controllers — which is
 * what throttles their NIC below line rate; the other schemes sit
 * around 50-60 GB/s.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    bench::printHeader(
        "Figure 6: bidirectional netperf TCP-STREAM, memory bandwidth");
    std::printf("%-10s %12s %16s %14s\n", "scheme", "Gb/s",
                "mem BW (GB/s)", "CPU%");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        auto run = work::runNetperf(work::bidirectionalOpts(k));
        std::printf("%-10s %12.1f %16.1f %14.1f\n",
                    dma::schemeKindName(k), run.res.totalGbps,
                    run.res.memGBps, run.res.cpuPct);
    }
    return 0;
}
