# Intra-run shard determinism through the real binary: the same seed
# at --intra-jobs=1 and --intra-jobs=4 must write byte-identical
# --json and --trace files for every cell-routed experiment (the
# in-process equivalent lives in tests/test_shard.cc).
#
# Invoked as:
#   cmake -DBENCH=<damn_bench> -DOUT=<dir> -P intrajobs_smoke.cmake

set(args --only=netperf_stream --warmup-ms=1 --measure-ms=3
    --backend=vtd,smmuv3)

foreach(k 1 4)
    execute_process(
        COMMAND ${BENCH} ${args} --intra-jobs=${k}
                --trace=${OUT}/intrajobs_${k}.trace
                --json=${OUT}/intrajobs_${k}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "damn_bench --intra-jobs=${k} failed: ${rc}")
    endif()
endforeach()

foreach(ext json trace)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT}/intrajobs_1.${ext} ${OUT}/intrajobs_4.${ext}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "--intra-jobs=4 ${ext} output differs from "
                "--intra-jobs=1")
    endif()
endforeach()
