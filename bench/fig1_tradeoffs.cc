/**
 * @file
 * Figure 1: protection-performance tradeoffs — aggregated TCP
 * throughput and CPU consumption of multi-core *bidirectional*
 * netperf TCP_STREAM (peak theoretical 200 Gb/s; the PCIe bus caps
 * each direction at ~106 Gb/s).
 *
 * Paper reference points: iommu-off 196 Gb/s, deferred 176, damn 171
 * (3% below deferred), shadow 160 at ~2x CPU, strict 113.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    bench::printHeader(
        "Figure 1: bidirectional netperf TCP-STREAM (RX+TX)");
    std::printf("%-10s %12s %14s\n", "scheme", "Gb/s",
                "CPU% (28 cores)");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        auto run = work::runNetperf(work::bidirectionalOpts(k));
        std::printf("%-10s %12.1f %14.1f\n", dma::schemeKindName(k),
                    run.res.totalGbps, run.res.cpuPct);
    }
    return 0;
}
