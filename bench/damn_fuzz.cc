/**
 * @file
 * damn_fuzz — deterministic DMA chaos fuzzer driver.
 *
 * Sweeps the weighted random chaos generator across {scheme} x
 * {backend} cells, checking the invariant oracles after every op
 * (src/fuzz/harness.hh).  Everything is virtual-time deterministic:
 * the same seed prints byte-identical output for any --jobs value.
 *
 *   damn_fuzz --ops=5000 --seed=42             # full default matrix
 *   damn_fuzz --scheme=strict --backend=smmu   # one cell
 *   damn_fuzz --inject=stale-tlb --shrink      # oracle self-check
 *   damn_fuzz --replay tests/corpus/foo.dfz    # regression corpus
 *
 * Exit codes: 0 clean (or every replay reproduced its recorded
 * verdict), 2 usage error, 3 an oracle violation was found, 4 a
 * replay's fresh verdict diverged from the recorded one.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fuzz/corpus.hh"
#include "fuzz/harness.hh"
#include "fuzz/shrink.hh"

using namespace damn;

namespace {

struct Options
{
    unsigned ops = 1000;
    std::uint64_t seed = 42;
    unsigned jobs = 1;
    bool shrink = false;
    bool injectStale = false;
    bool injectDevTlb = false;
    std::vector<dma::SchemeKind> schemes = fuzz::fuzzSchemes();
    std::vector<iommu::BackendKind> backends = fuzz::fuzzBackends();
    std::string saveDir;
    std::vector<std::string> replays;
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--ops=N] [--seed=S] [--jobs=N]\n"
        "          [--scheme=strict|deferred|shadow|damn|all]\n"
        "          [--backend=vtd|smmuv3|all]\n"
        "          [--inject=stale-tlb|stale-devtlb] [--shrink]\n"
        "          [--save=DIR]\n"
        "          [--replay FILE.dfz ...]\n",
        argv0);
}

bool
parseU64Arg(const char *s, std::uint64_t *out)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0')
        return false;
    *out = v;
    return true;
}

bool
parseArgs(int argc, char **argv, Options *opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&arg](const char *pfx) -> const char * {
            const std::size_t n = std::strlen(pfx);
            return arg.compare(0, n, pfx) == 0 ? arg.c_str() + n
                                               : nullptr;
        };
        std::uint64_t u = 0;
        if (const char *v = val("--ops=")) {
            if (!parseU64Arg(v, &u) || u == 0)
                return false;
            opt->ops = unsigned(u);
        } else if (const char *v2 = val("--seed=")) {
            if (!parseU64Arg(v2, &opt->seed))
                return false;
        } else if (const char *v3 = val("--jobs=")) {
            if (!parseU64Arg(v3, &u) || u == 0)
                return false;
            opt->jobs = unsigned(u);
        } else if (const char *v4 = val("--scheme=")) {
            if (std::string(v4) == "all") {
                opt->schemes = fuzz::fuzzSchemes();
            } else {
                opt->schemes.clear();
                std::string names(v4);
                std::size_t pos = 0;
                while (pos <= names.size()) {
                    const std::size_t comma = names.find(',', pos);
                    const std::string name = names.substr(
                        pos, comma == std::string::npos ? comma
                                                        : comma - pos);
                    dma::SchemeKind k;
                    if (!fuzz::fuzzSchemeFromName(name, &k))
                        return false;
                    opt->schemes.push_back(k);
                    if (comma == std::string::npos)
                        break;
                    pos = comma + 1;
                }
                if (opt->schemes.empty())
                    return false;
            }
        } else if (const char *v5 = val("--backend=")) {
            if (std::string(v5) == "all") {
                opt->backends = fuzz::fuzzBackends();
            } else {
                iommu::BackendKind b;
                if (!iommu::backendFromName(v5, &b))
                    return false;
                opt->backends = {b};
            }
        } else if (const char *v6 = val("--inject=")) {
            if (std::string(v6) == "stale-tlb")
                opt->injectStale = true;
            else if (std::string(v6) == "stale-devtlb")
                opt->injectDevTlb = true;
            else
                return false;
        } else if (const char *v7 = val("--save=")) {
            opt->saveDir = v7;
        } else if (arg == "--shrink") {
            opt->shrink = true;
        } else if (arg == "--replay") {
            if (i + 1 >= argc)
                return false;
            opt->replays.push_back(argv[++i]);
        } else if (const char *v8 = val("--replay=")) {
            opt->replays.push_back(v8);
        } else {
            return false;
        }
    }
    return true;
}

int
replayMode(const Options &opt)
{
    bool allReproduced = true;
    for (const std::string &path : opt.replays) {
        fuzz::CorpusFile file;
        std::string err;
        if (!fuzz::loadCorpus(path, &file, &err)) {
            std::fprintf(stderr, "damn_fuzz: %s: %s\n", path.c_str(),
                         err.c_str());
            return 2;
        }
        const fuzz::ReplayOutcome out = fuzz::replayCorpus(file);
        std::printf("replay %s cell=%s/%s ops=%zu recorded=%s "
                    "got=%s reproduced=%s\n",
                    path.c_str(),
                    dma::schemeKindName(file.cfg.scheme),
                    iommu::backendKindName(file.cfg.backend),
                    file.seq.size(), file.verdict.c_str(),
                    out.verdict.c_str(),
                    out.reproduced ? "yes" : "NO");
        allReproduced = allReproduced && out.reproduced;
    }
    return allReproduced ? 0 : 4;
}

/** One cell's fully-rendered report (printed in fixed order). */
struct CellReport
{
    std::string text;
    bool violated = false;
};

CellReport
runCell(const Options &opt, dma::SchemeKind scheme,
        iommu::BackendKind backend)
{
    fuzz::FuzzConfig cfg;
    cfg.scheme = scheme;
    cfg.backend = backend;
    cfg.seed = opt.seed;
    cfg.ops = opt.ops;
    cfg.injectStaleBug = opt.injectStale;
    cfg.injectDevTlbBug = opt.injectDevTlb;

    const fuzz::Sequence seq = fuzz::generate(cfg);
    fuzz::FuzzResult res = fuzz::runSequence(cfg, seq);

    CellReport rep;
    rep.violated = res.violated;
    char line[512];
    std::snprintf(line, sizeof(line),
                  "cell scheme=%s backend=%s seed=%llu ops=%zu/%zu "
                  "verdict=%s digest=%016llx faults=%llu stalls=%llu\n",
                  dma::schemeKindName(scheme),
                  iommu::backendKindName(backend),
                  (unsigned long long)cfg.seed, res.opsExecuted,
                  seq.size(), fuzz::verdictOf(res).c_str(),
                  (unsigned long long)res.digest,
                  (unsigned long long)res.faults,
                  (unsigned long long)res.watchdogStalls);
    rep.text += line;

    if (!res.violated)
        return rep;

    rep.text += "  violation op=" +
                std::to_string(res.violation.opIndex) + " oracle=" +
                res.violation.oracle + ": " + res.violation.detail +
                "\n";

    fuzz::Sequence repro = seq;
    if (opt.shrink) {
        const fuzz::ShrinkResult sh =
            fuzz::shrink(cfg, seq, res.violation);
        rep.text += "  shrunk " + std::to_string(seq.size()) +
                    " -> " + std::to_string(sh.seq.size()) +
                    " ops in " + std::to_string(sh.attempts) +
                    " attempts\n";
        repro = sh.seq;
        res = sh.result;
        for (const fuzz::Op &op : sh.seq)
            rep.text += "    " +
                        std::string(fuzz::opKindName(op.kind)) + " " +
                        std::to_string(op.a) + " " +
                        std::to_string(op.b) + " " +
                        std::to_string(op.c) + "\n";
    }

    if (!opt.saveDir.empty()) {
        fuzz::CorpusFile file;
        file.cfg = cfg;
        file.cfg.ops = unsigned(repro.size());
        file.seq = repro;
        file.verdict = fuzz::verdictOf(res);
        const std::string path =
            opt.saveDir + "/" +
            std::string(dma::schemeKindName(scheme)) + "-" +
            iommu::backendKindName(backend) + "-seed" +
            std::to_string(cfg.seed) +
            (cfg.injectDevTlbBug
                 ? "-stale-devtlb"
                 : cfg.injectStaleBug ? "-stale" : "") +
            ".dfz";
        std::string err;
        if (fuzz::saveCorpus(path, file, &err))
            rep.text += "  saved " + path + "\n";
        else
            rep.text += "  SAVE FAILED: " + err + "\n";
    }
    return rep;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, &opt)) {
        usage(argv[0]);
        return 2;
    }
    if (!opt.replays.empty())
        return replayMode(opt);

    // The cell matrix in fixed scheme-major order; execution may be
    // parallel but reports are emitted in matrix order, so output is
    // byte-identical for every --jobs value.
    struct Cell
    {
        dma::SchemeKind scheme;
        iommu::BackendKind backend;
    };
    std::vector<Cell> cells;
    for (const dma::SchemeKind s : opt.schemes)
        for (const iommu::BackendKind b : opt.backends)
            cells.push_back({s, b});

    std::vector<CellReport> reports(cells.size());
    std::size_t next = 0;
    std::mutex mu;
    const auto worker = [&] {
        for (;;) {
            std::size_t idx;
            {
                std::lock_guard<std::mutex> lk(mu);
                if (next >= cells.size())
                    return;
                idx = next++;
            }
            reports[idx] =
                runCell(opt, cells[idx].scheme, cells[idx].backend);
        }
    };
    const unsigned nThreads =
        unsigned(std::min<std::size_t>(opt.jobs, cells.size()));
    if (nThreads <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        for (unsigned i = 0; i < nThreads; ++i)
            pool.emplace_back(worker);
        for (std::thread &th : pool)
            th.join();
    }

    bool anyViolation = false;
    for (const CellReport &rep : reports) {
        std::fputs(rep.text.c_str(), stdout);
        anyViolation = anyViolation || rep.violated;
    }
    std::printf("%zu cells, %s\n", cells.size(),
                anyViolation ? "VIOLATIONS FOUND" : "all clean");
    return anyViolation ? 3 : 0;
}
