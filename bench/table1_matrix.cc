/**
 * @file
 * Table 1: the IOMMU protection/performance tradeoff matrix, with the
 * "secure" columns backed by *live attack replays* (workloads/attacks)
 * rather than just the schemes' self-reported properties.
 *
 *   subpage   — co-location theft must fail.
 *   window    — stale-window theft and TOCTTOU must fail.
 *   multi-Gbps / zero-copy — scheme properties.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "net/system.hh"
#include "workloads/attacks.hh"

using namespace damn;

int
main()
{
    bench::printHeader("Table 1: IOMMU protection-performance "
                       "tradeoffs (attack-verified)");
    std::printf("%-10s %9s %9s %12s %10s\n", "scheme", "subpage",
                "window", "multi-Gbps", "zero-copy");
    bench::printRule();

    for (dma::SchemeKind k : bench::allSchemes()) {
        const work::AttackReport rep = work::runAttacks(k);

        net::SystemParams p;
        p.scheme = k;
        net::System sys(p);

        const bool subpage = !rep.colocationTheft;
        const bool window = !rep.staleWindowTheft && !rep.tocttou;
        // Multi-gigabit capability per the paper's verdict: only
        // strict cannot drive the NIC at line rate (figure 5).
        const bool multigbps = k != dma::SchemeKind::Strict;
        const bool zerocopy = sys.dmaApi->zeroCopy();

        const auto yn = [](bool b) { return b ? "yes" : "NO"; };
        std::printf("%-10s %9s %9s %12s %10s\n", dma::schemeKindName(k),
                    yn(subpage), yn(window), yn(multigbps),
                    yn(zerocopy));
    }
    std::printf("\n(iommu-off provides no protection and is the "
                "unprotected baseline.)\n");
    return 0;
}
