/**
 * @file
 * Figure 11: multi-core fio/NVMe IO rate and CPU usage, sweeping the
 * read block size under each DMA-API protection scheme.
 *
 * Paper reference points: the NVMe disk is the bottleneck everywhere
 * (~900 K IOPS at 512 B; ~3.2 GiB/s at larger blocks).  No scheme
 * throttles the device; strict burns ~2x the CPU of the others at
 * 512 B and converges for large blocks.  (DAMN itself does not apply
 * to storage — section 2.2 — which is exactly the point: prior
 * schemes suffice there.)
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/fio.hh"

using namespace damn;

int
main()
{
    const dma::SchemeKind schemes[] = {
        dma::SchemeKind::IommuOff,
        dma::SchemeKind::Deferred,
        dma::SchemeKind::Strict,
        dma::SchemeKind::Shadow,
    };

    bench::printHeader("Figure 11: fio direct sequential read, "
                       "12 jobs (kIOPS / CPU%)");
    std::printf("%-10s", "block");
    for (const auto k : schemes)
        std::printf(" %17s", dma::schemeKindName(k));
    std::printf("\n");
    bench::printRule();

    for (const std::uint32_t bs :
         {512u, 1024u, 2048u, 4096u, 8192u, 16384u, 65536u, 131072u}) {
        std::printf("%-10u", bs);
        for (const auto k : schemes) {
            work::FioOpts o;
            o.scheme = k;
            o.blockBytes = bs;
            const work::FioResult r = work::runFio(o);
            std::printf("   %7.0fk /%5.1f%%", r.kiops, r.cpuPct);
        }
        std::printf("\n");
    }
    return 0;
}
