# Selfperf smoke: run bench_selfperf at a reduced window, then validate
# the BENCH_selfperf.json it wrote against the documented schema with
# the binary's own --check mode.  Keeps every future PR recording
# events/sec and wall-ns-per-sim-ms alongside the tier-1 tests.
#
# Invoked as:
#   cmake -DBENCH=<bench_selfperf> -DOUT=<dir> -P selfperf_smoke.cmake

set(artifact ${OUT}/selfperf_smoke.json)

execute_process(
    COMMAND ${BENCH} --events=200000 --warmup-ms=1 --measure-ms=2
            --out=${artifact}
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "bench_selfperf run failed: ${rc}")
endif()

execute_process(
    COMMAND ${BENCH} --check=${artifact}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_selfperf.json schema check failed: ${rc}")
endif()
