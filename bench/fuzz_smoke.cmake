# Fuzz-smoke: the acceptance battery for the damn_fuzz driver.
#
#  1. Determinism: `--ops=5000 --seed=42` over the full matrix prints
#     byte-identical stdout across repeated runs AND across --jobs
#     values (virtual time, no wall-clock leakage).
#  2. Oracle self-check: `--inject=stale-tlb` plants a silently dropped
#     IOTLB invalidation; the no-stale-translation oracle must catch it
#     and the shrinker must minimize the repro to <= 12 ops.
#  3. Oracle self-check (ATS): `--inject=stale-devtlb` silently drops
#     device-TLB (ATC) invalidations; the stale-device-tlb oracle must
#     catch what the IOTLB oracle cannot see, shrunk to <= 12 ops.
#  4. Regression corpus: every committed tests/corpus/*.dfz replays to
#     its recorded verdict.
#
# Invoked as:
#   cmake -DFUZZ=<damn_fuzz> -DOUT=<dir> -DCORPUS=<tests/corpus> \
#         -P fuzz_smoke.cmake

# ---- 1. determinism across runs and --jobs --------------------------

foreach(tag j1a j1b j8)
    if(tag STREQUAL "j8")
        set(jobs 8)
    else()
        set(jobs 1)
    endif()
    execute_process(
        COMMAND ${FUZZ} --ops=5000 --seed=42 --jobs=${jobs}
        RESULT_VARIABLE rc
        OUTPUT_FILE ${OUT}/fuzz_${tag}.out)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "damn_fuzz matrix run (${tag}) failed: ${rc}")
    endif()
endforeach()

foreach(other j1b j8)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT}/fuzz_j1a.out ${OUT}/fuzz_${other}.out
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "damn_fuzz output not deterministic (j1a vs ${other})")
    endif()
endforeach()

# ---- 2. injected stale-TLB bug: caught and shrunk -------------------

foreach(cell "strict.vtd" "deferred.smmuv3")
    string(REPLACE "." ";" parts ${cell})
    list(GET parts 0 scheme)
    list(GET parts 1 backend)
    execute_process(
        COMMAND ${FUZZ} --ops=40 --seed=7 --scheme=${scheme}
                --backend=${backend} --inject=stale-tlb --shrink
                --save=${OUT}
        RESULT_VARIABLE rc
        OUTPUT_FILE ${OUT}/fuzz_inject_${scheme}_${backend}.out)
    if(NOT rc EQUAL 3)
        message(FATAL_ERROR
                "injected stale-TLB bug not caught in ${cell} "
                "(exit ${rc}, want 3)")
    endif()
    file(READ ${OUT}/fuzz_inject_${scheme}_${backend}.out inject_out)
    if(NOT inject_out MATCHES "oracle=stale-translation")
        message(FATAL_ERROR
                "${cell}: violation not attributed to the "
                "stale-translation oracle:\n${inject_out}")
    endif()
    set(repro ${OUT}/${scheme}-${backend}-seed7-stale.dfz)
    file(READ ${repro} dfz)
    if(NOT dfz MATCHES "ops ([0-9]+)")
        message(FATAL_ERROR "${repro}: no ops header")
    endif()
    if(CMAKE_MATCH_1 GREATER 12)
        message(FATAL_ERROR
                "${cell}: shrunk repro has ${CMAKE_MATCH_1} ops "
                "(acceptance bound is 12)")
    endif()
    # The minimized repro must itself replay to the same verdict.
    execute_process(
        COMMAND ${FUZZ} --replay=${repro}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${cell}: shrunk repro failed to replay")
    endif()
endforeach()

# ---- 3. injected stale device-TLB bug: caught and shrunk ------------

foreach(cell "strict.vtd" "deferred.smmuv3")
    string(REPLACE "." ";" parts ${cell})
    list(GET parts 0 scheme)
    list(GET parts 1 backend)
    execute_process(
        COMMAND ${FUZZ} --ops=40 --seed=7 --scheme=${scheme}
                --backend=${backend} --inject=stale-devtlb --shrink
                --save=${OUT}
        RESULT_VARIABLE rc
        OUTPUT_FILE ${OUT}/fuzz_devtlb_${scheme}_${backend}.out)
    if(NOT rc EQUAL 3)
        message(FATAL_ERROR
                "injected stale device-TLB bug not caught in ${cell} "
                "(exit ${rc}, want 3)")
    endif()
    file(READ ${OUT}/fuzz_devtlb_${scheme}_${backend}.out inject_out)
    if(NOT inject_out MATCHES "oracle=stale-device-tlb")
        message(FATAL_ERROR
                "${cell}: violation not attributed to the "
                "stale-device-tlb oracle:\n${inject_out}")
    endif()
    set(repro ${OUT}/${scheme}-${backend}-seed7-stale-devtlb.dfz)
    file(READ ${repro} dfz)
    if(NOT dfz MATCHES "ops ([0-9]+)")
        message(FATAL_ERROR "${repro}: no ops header")
    endif()
    if(CMAKE_MATCH_1 GREATER 12)
        message(FATAL_ERROR
                "${cell}: shrunk devtlb repro has ${CMAKE_MATCH_1} ops "
                "(acceptance bound is 12)")
    endif()
    execute_process(
        COMMAND ${FUZZ} --replay=${repro}
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "${cell}: shrunk devtlb repro failed to replay")
    endif()
endforeach()

# ---- 4. committed regression corpus ---------------------------------

file(GLOB corpus_files ${CORPUS}/*.dfz)
if(NOT corpus_files)
    message(FATAL_ERROR "no committed corpus files under ${CORPUS}")
endif()
foreach(f ${corpus_files})
    execute_process(
        COMMAND ${FUZZ} --replay=${f}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "corpus replay diverged for ${f} (exit ${rc})")
    endif()
endforeach()
