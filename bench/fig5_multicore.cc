/**
 * @file
 * Figure 5: multi-core TCP throughput and CPU utilization (28 netperf
 * instances, one per core; 100% CPU = all 28 cores busy).
 *
 * Paper reference points:
 *   RX: all schemes but strict reach >= 100 Gb/s (NIC-bound);
 *       strict throttles at ~80 Gb/s with ~64% CPU;
 *       shadow uses ~37% CPU, ~1.5x of damn/deferred/iommu-off.
 *   TX: similar trends.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    for (auto [mode, title] :
         {std::pair{work::NetMode::Rx,
                    "Figure 5a: multi-core netperf TCP-STREAM RX"},
          std::pair{work::NetMode::Tx,
                    "Figure 5b: multi-core netperf TCP-STREAM TX"}}) {
        bench::printHeader(title);
        std::printf("%-10s %12s %14s\n", "scheme", "Gb/s",
                    "CPU% (28 cores)");
        bench::printRule();
        for (dma::SchemeKind k : bench::allSchemes()) {
            auto run = work::runNetperf(work::multiCoreOpts(k, mode));
            std::printf("%-10s %12.1f %14.1f\n", dma::schemeKindName(k),
                        run.res.totalGbps, run.res.cpuPct);
        }
    }
    return 0;
}
