/**
 * @file
 * Table 3: factors behind the damn vs iommu-off gap in the multi-core
 * bidirectional test.
 *
 * Paper reference points (Gb/s, % of iommu-off):
 *   damn                                     170 (86.3%)
 *   damn + huge iova pages + dense range     183 (92.9%)
 *   damn without iommu                       192 (97.5%)
 *   iommu-off                                197 (100%)
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

namespace {

double
runVariant(core::DmaCacheConfig cache, dma::SchemeKind scheme)
{
    work::NetperfOpts o = work::bidirectionalOpts(scheme);
    o.sysParams.damnCache = cache;
    return work::runNetperf(o).res.totalGbps;
}

} // namespace

int
main()
{
    bench::printHeader("Table 3: damn throughput gap analysis "
                       "(bidirectional netperf)");
    std::printf("%-45s %8s %8s\n", "configuration", "Gb/s", "% of off");
    bench::printRule();

    core::DmaCacheConfig stock;
    const double damn_gbps = runVariant(stock, dma::SchemeKind::Damn);

    core::DmaCacheConfig huge;
    huge.hugeIovaPages = true;
    huge.denseIova = true;
    const double huge_gbps = runVariant(huge, dma::SchemeKind::Damn);

    core::DmaCacheConfig noiommu;
    noiommu.mapInIommu = false;
    const double noiommu_gbps =
        runVariant(noiommu, dma::SchemeKind::Damn);

    const double off_gbps =
        runVariant(stock, dma::SchemeKind::IommuOff);

    const auto row = [&](const char *name, double gbps) {
        std::printf("%-45s %8.1f %7.1f%%\n", name, gbps,
                    100.0 * gbps / off_gbps);
    };
    row("damn", damn_gbps);
    row("damn + huge iova pages + dense iova range", huge_gbps);
    row("damn without iommu", noiommu_gbps);
    row("iommu-off", off_gbps);
    return 0;
}
