/**
 * @file
 * Figure 8: CPU cost of DAMN's TOCTTOU copy-on-access defense.
 *
 * 14 netperf RX instances on one socket, with an XOR netfilter
 * callback registered that touches a configurable number of each
 * segment's payload bytes through the skbuff accessor API.  Under damn
 * every accessed byte is first copied out of the device's reach; under
 * iommu-off and shadow the access is free of copies (shadow already
 * paid per-DMA).
 *
 * Paper reference points: all variants keep line rate; iommu-off and
 * shadow CPU stay flat (~13% / ~24%); damn starts at iommu-off's
 * level and grows toward (but stays ~10% below) shadow as the
 * accessed fraction approaches the whole 64 KiB segment.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

namespace {

double
runWithXor(dma::SchemeKind k, std::uint32_t touch_bytes, double *gbps)
{
    work::NetperfOpts o;
    o.scheme = k;
    o.mode = work::NetMode::Rx;
    o.instances = 14;
    o.coreLimit = 14;
    o.segBytes = 64 * 1024;
    o.costFactor = 1.6; // fewer flows than fig. 5, less interference
    auto run = work::runNetperf(o, [touch_bytes](work::NetperfRun &r) {
        if (touch_bytes == 0)
            return;
        r.stack->addHook([touch_bytes, &r](sim::CpuCursor &cpu,
                                           net::SkBuff &skb,
                                           net::SkbAccessor &acc) {
            const std::uint32_t n =
                std::min<std::uint32_t>(touch_bytes, skb.len());
            // Inspect (and thereby secure) the bytes, then XOR them.
            acc.access(cpu, skb, 0, n);
            cpu.charge(sim::TimeNs(double(n) /
                                   r.sys->ctx.cost.xorBytesPerNs));
        });
    });
    *gbps = run.res.totalGbps;
    return run.res.cpuPct;
}

} // namespace

int
main()
{
    const std::uint32_t touches[] = {0,    64,    256,   1024,
                                     4096, 16384, 65536};
    const dma::SchemeKind schemes[] = {dma::SchemeKind::IommuOff,
                                       dma::SchemeKind::Shadow,
                                       dma::SchemeKind::Damn};

    bench::printHeader("Figure 8: CPU% vs bytes accessed per segment "
                       "(XOR netfilter, 14-core RX)");
    std::printf("%-12s", "bytes");
    for (const auto k : schemes)
        std::printf(" %12s", dma::schemeKindName(k));
    std::printf("  (all at line rate)\n");
    bench::printRule();
    for (const std::uint32_t t : touches) {
        std::printf("%-12u", t);
        for (const auto k : schemes) {
            double gbps = 0.0;
            const double cpu = runWithXor(k, t, &gbps);
            std::printf(" %11.1f%%", cpu);
        }
        std::printf("\n");
    }
    return 0;
}
