/**
 * @file
 * Microbenchmarks (google-benchmark) for the allocator hot paths and
 * the substrate data structures, plus virtual-time ablations for the
 * design decisions DESIGN.md calls out:
 *
 *  - damn_alloc/damn_free vs kmalloc/kfree vs the buddy allocator
 *    (host-time of the functional fast paths);
 *  - IOVA encode/decode;
 *  - IOTLB lookup and I/O page-table walk;
 *  - ablation: context-split DMA caches vs a single cache paying an
 *    interrupt-disable per op (virtual ns per op);
 *  - ablation: magazine layer vs depot-every-time (virtual ns per op).
 */

#include <benchmark/benchmark.h>

#include "net/nic.hh"

using namespace damn;

namespace {

net::System &
damnSystem()
{
    static net::System sys([] {
        net::SystemParams p;
        p.scheme = dma::SchemeKind::Damn;
        return p;
    }());
    return sys;
}

net::NicDevice &
nicOf(net::System &sys)
{
    static net::NicDevice nic(sys, "mlx5_bench");
    return nic;
}

void
BM_DamnAllocFree(benchmark::State &state)
{
    auto &sys = damnSystem();
    auto &nic = nicOf(sys);
    const auto size = std::uint32_t(state.range(0));
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    for (auto _ : state) {
        const mem::Pa pa =
            sys.damn->damnAlloc(cpu, &nic, core::Rights::Write, size);
        benchmark::DoNotOptimize(pa);
        sys.damn->damnFree(cpu, pa);
    }
}
BENCHMARK(BM_DamnAllocFree)->Arg(256)->Arg(4096)->Arg(16384)->Arg(65536);

void
BM_KmallocFree(benchmark::State &state)
{
    auto &sys = damnSystem();
    const auto size = std::uint32_t(state.range(0));
    for (auto _ : state) {
        const mem::Pa pa = sys.heap.kmalloc(size);
        benchmark::DoNotOptimize(pa);
        sys.heap.kfree(pa);
    }
}
BENCHMARK(BM_KmallocFree)->Arg(256)->Arg(4096);

void
BM_BuddyAllocFree(benchmark::State &state)
{
    auto &sys = damnSystem();
    const auto order = unsigned(state.range(0));
    for (auto _ : state) {
        const mem::Pfn pfn = sys.pageAlloc.allocPages(order, 0);
        benchmark::DoNotOptimize(pfn);
        sys.pageAlloc.freePages(pfn, order);
    }
}
BENCHMARK(BM_BuddyAllocFree)->Arg(0)->Arg(4);

void
BM_IovaEncodeDecode(benchmark::State &state)
{
    std::uint64_t offset = 0;
    for (auto _ : state) {
        const iommu::Iova iova = core::encodeIova(
            13, core::Rights::Write, 5, 1, offset & core::kOffsetMask);
        const core::IovaFields f = core::decodeIova(iova);
        benchmark::DoNotOptimize(f);
        offset += 65536;
    }
}
BENCHMARK(BM_IovaEncodeDecode);

void
BM_IotlbLookup(benchmark::State &state)
{
    iommu::Iotlb tlb;
    iommu::WalkResult w;
    w.present = true;
    w.pa = 0x1000;
    w.perm = iommu::PermRW;
    for (unsigned i = 0; i < 512; ++i)
        tlb.insert(0, iommu::Iova(i) << 12, w);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.lookup(0, (i++ % 512) << 12));
    }
}
BENCHMARK(BM_IotlbLookup);

void
BM_PageTableWalk(benchmark::State &state)
{
    iommu::IoPageTable pt;
    for (unsigned i = 0; i < 1024; ++i)
        pt.map(iommu::Iova(i) << 12, mem::Pa(i) << 12, iommu::PermRW);
    std::uint64_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pt.walk((i++ % 1024) << 12));
    }
}
BENCHMARK(BM_PageTableWalk);

/**
 * Ablation (design decision 2): two physical DMA-cache copies per
 * context vs one cache with interrupt disabling around each op.
 * Reported as *virtual* ns per alloc/free pair.
 */
void
BM_AblationContextSplit(benchmark::State &state)
{
    const bool split = state.range(0) != 0;
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    net::System sys(p);
    net::NicDevice nic(sys, "nic");
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    std::uint64_t ops = 0;
    for (auto _ : state) {
        if (!split) {
            // Single-cache design: pay irq disable/enable per op pair.
            cpu.charge(sys.ctx.cost.irqDisableNs * 2);
        }
        const mem::Pa pa = sys.damn->damnAlloc(
            cpu, &nic, core::Rights::Write, 4096,
            split ? core::AllocCtx::Interrupt
                  : core::AllocCtx::Standard);
        sys.damn->damnFree(cpu, pa,
                           split ? core::AllocCtx::Interrupt
                                 : core::AllocCtx::Standard);
        ++ops;
    }
    state.counters["virtual_ns_per_op"] =
        double(cpu.time) / double(ops);
}
BENCHMARK(BM_AblationContextSplit)
    ->Arg(0)
    ->Arg(1)
    ->ArgName("context_split");

/**
 * Ablation (design decision 4): magazine layer vs hitting the depot
 * on every chunk request.
 */
void
BM_AblationMagazines(benchmark::State &state)
{
    const bool magazines = state.range(0) != 0;
    net::SystemParams p;
    p.scheme = dma::SchemeKind::Damn;
    p.damnCache.magazineCapacity = magazines ? 16 : 1;
    net::System sys(p);
    net::NicDevice nic(sys, "nic");
    sim::CpuCursor cpu(sys.ctx.machine.core(0), 0);
    std::uint64_t ops = 0;
    // Producer/consumer batches (the paper's I/O pattern): allocate a
    // ring's worth of whole chunks, then free them all.  With a real
    // magazine the batch amortizes depot visits; with M=1 every chunk
    // round-trips through the depot lock.
    std::vector<mem::Pa> batch;
    for (auto _ : state) {
        batch.clear();
        for (int i = 0; i < 32; ++i) {
            batch.push_back(sys.damn->damnAlloc(
                cpu, &nic, core::Rights::Write, 65536));
        }
        for (const mem::Pa pa : batch)
            sys.damn->damnFree(cpu, pa);
        ops += 64;
    }
    state.counters["virtual_ns_per_op"] =
        double(cpu.time) / double(ops);
}
BENCHMARK(BM_AblationMagazines)->Arg(0)->Arg(1)->ArgName("magazines");

} // namespace

BENCHMARK_MAIN();
