/**
 * @file
 * Figure 2: interaction between networking and an unrelated
 * memory-hungry program — bidirectional netperf on 4 cores next to
 * 3 x 8-core Graph500 BFS loops.
 *
 * Paper reference points: shadow buffers cannibalize memory bandwidth,
 * inflating Graph500 iteration time by ~1.44x and halving netperf
 * throughput; damn lets each workload run as if the other were absent.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/graph500.hh"
#include "workloads/netperf.hh"

using namespace damn;

namespace {

struct CorunResult
{
    double gbps;
    double iterSeconds;
};

CorunResult
runCorun(dma::SchemeKind scheme, bool with_net, bool with_graph)
{
    work::NetperfOpts o;
    o.scheme = scheme;
    o.mode = work::NetMode::Bidi;
    o.instances = 8; // 4 RX + 4 TX over 4 cores, 2 per CPU
    o.coreLimit = 4;
    // Few flows => LRO aggregates fully, as in the single-core test.
    o.segBytes = 64 * 1024;
    o.costFactor = 1.2;
    o.measureNs = 300 * sim::kNsPerMs;

    work::NetperfRun run = work::makeNetperfSystem(o);
    std::unique_ptr<work::BfsCorunner> bfs;
    if (with_graph) {
        work::BfsCorunner::Config bc;
        bc.firstCore = 4;
        bfs = std::make_unique<work::BfsCorunner>(run.sys->ctx, bc);
        bfs->start();
    }

    net::StreamConfig sc;
    sc.warmupNs = o.warmupNs;
    sc.measureNs = o.measureNs;
    sc.costFactor = o.costFactor;
    net::StreamEngine eng(*run.sys, *run.nic, *run.stack, sc);
    if (with_net)
        work::addNetperfFlows(run, eng, o);

    CorunResult r{};
    if (with_net) {
        if (bfs) {
            run.sys->ctx.engine.scheduleIn(
                o.warmupNs, [&] { bfs->resetWindow(o.warmupNs); });
        }
        r.gbps = eng.run().totalGbps;
        if (bfs)
            r.iterSeconds =
                bfs->meanIterationSeconds(run.sys->ctx.now());
    } else {
        // Graph500 alone.
        run.sys->ctx.engine.run(o.warmupNs);
        bfs->resetWindow(run.sys->ctx.now());
        run.sys->ctx.engine.run(o.warmupNs + o.measureNs);
        r.iterSeconds = bfs->meanIterationSeconds(run.sys->ctx.now());
    }
    return r;
}

} // namespace

int
main()
{
    bench::printHeader("Figure 2: netperf (4 cores, bidi) + Graph500 "
                       "(3 x 8 cores)");
    std::printf("%-12s %14s %22s\n", "config", "netperf Gb/s",
                "BFS iter time (s)");
    bench::printRule();

    for (dma::SchemeKind k : bench::allSchemes()) {
        const CorunResult r = runCorun(k, true, true);
        std::printf("%-12s %14.1f %22.3f\n", dma::schemeKindName(k),
                    r.gbps, r.iterSeconds);
    }
    const CorunResult nograph =
        runCorun(dma::SchemeKind::IommuOff, true, false);
    std::printf("%-12s %14.1f %22s\n", "no graph", nograph.gbps, "-");
    const CorunResult nonet =
        runCorun(dma::SchemeKind::IommuOff, false, true);
    std::printf("%-12s %14s %22.3f\n", "no net", "-", nonet.iterSeconds);
    return 0;
}
