/**
 * @file
 * Self-benchmark of the simulator itself: how fast does the simulator
 * run, in wall-clock terms?  Every other bench in tree reports
 * *virtual-time* results; this one reports the metrics that bound how
 * long sweeps, soaks and CI take on real hardware:
 *
 *  - raw DES dispatch rate (events/sec) of the production engine,
 *    A/B'd against the seed-state engine (bench/legacy_engine.hh) on
 *    an identical timer-churn workload — the "engine fast path"
 *    speedup, tracked PR over PR;
 *  - wall-ns per simulated-ms of a representative experiment unit
 *    (multi-core netperf RX) per protection scheme, plus its
 *    wall-clock event dispatch rate;
 *  - intra-run shard scaling: the sharded scale-out netperf workload
 *    (4 machine shards under sim::ShardedEngine) at 1/2/4 workers —
 *    events/sec per worker count plus the determinism digest, which
 *    must be identical at every worker count (hard gate).
 *
 * Results go to BENCH_selfperf.json (see EXPERIMENTS.md for the
 * schema).  The numbers are wall-clock and therefore host-dependent —
 * the file records a trajectory, not a deterministic artifact.
 * `--check=PATH` validates a previously written file against the
 * schema (used by the bench-selfperf-smoke ctest).
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "exp/driver.hh"
#include "exp/json.hh"
#include "legacy_engine.hh"
#include "sim/engine.hh"
#include "workloads/netperf.hh"
#include "workloads/sharded.hh"

#include <thread>

namespace {

using damn::sim::TimeNs;

const char kUsage[] =
    "usage: bench_selfperf [options]\n"
    "\n"
    "Times the simulator itself (wall clock) and writes the\n"
    "BENCH_selfperf.json perf-tracking artifact.\n"
    "\n"
    "  --out=PATH        output file (default BENCH_selfperf.json)\n"
    "  --events=N        engine microbench dispatch count (2000000)\n"
    "  --warmup-ms=N     experiment-unit warmup window (5)\n"
    "  --measure-ms=N    experiment-unit measure window (20)\n"
    "  --check=PATH      validate an existing artifact against the\n"
    "                    schema and exit (no benchmarking)\n"
    "  --regress-check=PATH\n"
    "                    re-run the engine A/B microbench and fail\n"
    "                    (exit 5) if the measured fast/legacy speedup\n"
    "                    falls more than --tolerance percent below\n"
    "                    PATH's recorded engine.speedup.  The ratio is\n"
    "                    host-independent (both engines run on the\n"
    "                    same machine back to back), unlike the raw\n"
    "                    events/sec numbers.  Then replays the sharded\n"
    "                    netperf workload at 1 and 4 workers: digest or\n"
    "                    event-count divergence always fails (exit 5);\n"
    "                    on hosts with >= 4 hardware threads the\n"
    "                    4-worker speedup must also clear\n"
    "                    max(1.5, baseline * (1 - tolerance)).\n"
    "  --tolerance=PCT   allowed speedup regression (default 15)\n"
    "  --help            this text\n";

double
wallSeconds(std::chrono::steady_clock::time_point t0,
            std::chrono::steady_clock::time_point t1)
{
    return std::chrono::duration<double>(t1 - t0).count();
}

std::uint64_t
xorshift(std::uint64_t x)
{
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
}

/**
 * The engine microbench workload, identical for both engines: a fixed
 * population of self-perpetuating timers with pseudo-random deltas,
 * with one schedule+cancel churn pair every 8th dispatch — the mix
 * (mostly timers, some cancels) the NIC/TCP/NVMe models generate.
 */
template <typename Eng>
struct ChurnTimer
{
    Eng *eng;
    std::uint64_t *dispatched;
    std::uint64_t *rng;
    std::uint64_t target;

    void
    operator()() const
    {
        if (++*dispatched >= target)
            return;
        const std::uint64_t r = *rng = xorshift(*rng);
        const TimeNs delta = 1 + TimeNs(r % 997);
        eng->scheduleIn(delta, *this);
        if ((r & 7) == 0) {
            const auto id = eng->scheduleIn(delta + 13, *this);
            eng->cancel(id);
        }
    }
};

/** Dispatch @p target events through @p Eng; wall events/sec. */
template <typename Eng>
double
engineEventsPerSecOnce(std::uint64_t target)
{
    Eng eng;
    std::uint64_t dispatched = 0;
    std::uint64_t rng = 0x2545F4914F6CDD1Dull;
    const ChurnTimer<Eng> timer{&eng, &dispatched, &rng, target};
    static_assert(sizeof(timer) <= damn::sim::SmallFn::kInlineBytes,
                  "microbench timer must stay allocation-free");
    for (unsigned i = 0; i < 64; ++i)
        eng.schedule(1 + i, timer);
    const auto t0 = std::chrono::steady_clock::now();
    eng.runAll();
    const auto t1 = std::chrono::steady_clock::now();
    return double(eng.dispatched()) / wallSeconds(t0, t1);
}

/**
 * Best-of-K events/sec: scheduler preemption and frequency scaling
 * only ever make a trial *slower*, so the max over trials is the
 * least-noisy estimate of the engine's true rate — what both the
 * artifact and the bench-selfperf-tolerance regression gate record.
 */
constexpr unsigned kEngineTrials = 5;

template <typename Eng>
double
engineEventsPerSec(std::uint64_t target)
{
    double best = 0.0;
    for (unsigned i = 0; i < kEngineTrials; ++i)
        best = std::max(best, engineEventsPerSecOnce<Eng>(target));
    return best;
}

struct UnitResult
{
    std::string name;
    std::string scheme;
    double simMs = 0.0;
    double wallMs = 0.0;
    double wallNsPerSimMs = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
};

/** Time one representative experiment unit (netperf multi-core RX). */
UnitResult
runUnit(damn::dma::SchemeKind scheme, TimeNs warmup_ns,
        TimeNs measure_ns)
{
    namespace work = damn::work;
    work::NetperfOpts o =
        work::multiCoreOpts(scheme, work::NetMode::Rx);
    o.runWindow = work::RunWindow{warmup_ns, measure_ns};
    const auto t0 = std::chrono::steady_clock::now();
    const work::NetperfRun run = work::runNetperf(o);
    const auto t1 = std::chrono::steady_clock::now();

    UnitResult u;
    u.name = "netperf_multicore_rx";
    u.scheme = damn::dma::schemeKindName(scheme);
    u.simMs = double(o.runWindow.endNs()) / 1e6;
    const double wall_s = wallSeconds(t0, t1);
    u.wallMs = wall_s * 1e3;
    u.wallNsPerSimMs = wall_s * 1e9 / u.simMs;
    u.events = run.sys->ctx.engine.dispatched();
    u.eventsPerSec = wall_s > 0.0 ? double(u.events) / wall_s : 0.0;
    return u;
}

// ---------------------------------------------------------------------
// Intra-run shard scaling (sim::ShardedEngine)
// ---------------------------------------------------------------------

/** Machine shards of the scaling workload: enough independent engines
 *  that 4 workers all have a shard to advance every round. */
constexpr unsigned kShardCount = 4;

struct ShardTrial
{
    unsigned workers = 0;
    std::uint64_t events = 0;
    double wallMs = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t digest = 0;
};

/** One sharded scale-out netperf run at @p workers threads. */
ShardTrial
runShardTrial(unsigned workers, TimeNs warmup_ns, TimeNs measure_ns)
{
    namespace work = damn::work;
    work::ShardedNetperfOpts o;
    o.plan.shards = kShardCount;
    o.scheme = damn::dma::SchemeKind::Damn;
    o.runWindow = work::RunWindow{warmup_ns, measure_ns};
    o.workers = workers;

    const auto t0 = std::chrono::steady_clock::now();
    const work::ShardedNetperfResult r = work::runShardedNetperf(o);
    const auto t1 = std::chrono::steady_clock::now();

    ShardTrial t;
    t.workers = workers;
    t.events = r.events;
    const double wall_s = wallSeconds(t0, t1);
    t.wallMs = wall_s * 1e3;
    t.eventsPerSec = wall_s > 0.0 ? double(r.events) / wall_s : 0.0;
    t.digest = r.digest;
    return t;
}

std::string
digestHex(std::uint64_t digest)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  (unsigned long long)digest);
    return buf;
}

// ---------------------------------------------------------------------
// Schema validation (--check)
// ---------------------------------------------------------------------

bool
checkNumber(const damn::exp::Json *v, const char *key, bool positive,
            std::string *err)
{
    if (!v) {
        *err = std::string("missing key: ") + key;
        return false;
    }
    double d = 0.0;
    try {
        d = v->asDouble();
    } catch (const std::exception &) {
        *err = std::string("not a number: ") + key;
        return false;
    }
    if (positive && !(d > 0.0)) {
        *err = std::string("must be > 0: ") + key;
        return false;
    }
    return true;
}

/** Validate a BENCH_selfperf.json document.  False + *err on error. */
bool
checkSchema(const damn::exp::Json &doc, std::string *err)
{
    using damn::exp::Json;
    if (!doc.isObject()) {
        *err = "top level is not an object";
        return false;
    }
    const Json *ver = doc.find("schema_version");
    if (!checkNumber(ver, "schema_version", true, err))
        return false;
    const Json *gen = doc.find("generator");
    if (!gen || gen->str() != "bench_selfperf") {
        *err = "generator is not \"bench_selfperf\"";
        return false;
    }
    const Json *eng = doc.find("engine");
    if (!eng || !eng->isObject()) {
        *err = "missing object: engine";
        return false;
    }
    for (const char *key :
         {"events", "fast_events_per_sec", "legacy_events_per_sec",
          "speedup"})
        if (!checkNumber(eng->find(key), key, true, err))
            return false;
    const Json *units = doc.find("units");
    if (!units || !units->isArray() || units->items().empty()) {
        *err = "units must be a non-empty array";
        return false;
    }
    for (const Json &u : units->items()) {
        if (!u.isObject()) {
            *err = "unit is not an object";
            return false;
        }
        for (const char *key : {"name", "scheme"}) {
            const Json *s = u.find(key);
            if (!s || s->kind() != Json::Kind::String ||
                s->str().empty()) {
                *err = std::string("unit needs a string: ") + key;
                return false;
            }
        }
        for (const char *key : {"sim_ms", "wall_ms",
                                "wall_ns_per_sim_ms", "events",
                                "events_per_sec"})
            if (!checkNumber(u.find(key), key, true, err))
                return false;
    }
    // v2: the intra-run shard-scaling section (sim::ShardedEngine).
    if (ver->asDouble() >= 2.0) {
        const Json *shard = doc.find("shard");
        if (!shard || !shard->isObject()) {
            *err = "missing object: shard";
            return false;
        }
        for (const char *key : {"shards", "speedup_w4"})
            if (!checkNumber(shard->find(key), key, true, err))
                return false;
        const Json *digest = shard->find("digest");
        if (!digest || digest->kind() != Json::Kind::String ||
            digest->str().empty()) {
            *err = "shard needs a string: digest";
            return false;
        }
        const Json *trials = shard->find("trials");
        if (!trials || !trials->isArray() || trials->items().empty()) {
            *err = "shard.trials must be a non-empty array";
            return false;
        }
        for (const Json &t : trials->items())
            for (const char *key :
                 {"workers", "events", "wall_ms", "events_per_sec"})
                if (!checkNumber(t.find(key), key, true, err))
                    return false;
    }
    return true;
}

/**
 * Perf-regression gate (the bench-selfperf-tolerance ctest): re-run
 * the engine A/B and compare the measured speedup ratio against the
 * committed baseline, then re-run the intra-run shard scaling A/B
 * (1 worker vs 4) with two gates:
 *
 *  - determinism: the two worker counts must produce identical
 *    digests on every host (byte-identical execution — exit 5);
 *  - speedup: on hosts with >= 4 hardware threads, the 4-worker
 *    speedup must clear both the committed baseline (minus the
 *    tolerance) and an absolute 1.5x floor.  Hosts with fewer
 *    threads cannot exhibit parallel speedup, so only the
 *    determinism gate binds there.
 *
 * Exit 5 — distinct from schema/usage errors — on a regression.
 */
int
regressCheck(const std::string &path, double tolerance_pct,
             std::uint64_t events)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_selfperf: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    double baseline = 0.0;
    double shard_baseline = 0.0; // 0 = v1 file, no shard section
    try {
        const damn::exp::Json doc = damn::exp::Json::parse(ss.str());
        std::string err;
        if (!checkSchema(doc, &err)) {
            std::fprintf(stderr,
                         "bench_selfperf: %s: schema violation: %s\n",
                         path.c_str(), err.c_str());
            return 1;
        }
        baseline = doc.find("engine")->find("speedup")->asDouble();
        if (const damn::exp::Json *shard = doc.find("shard"))
            shard_baseline = shard->find("speedup_w4")->asDouble();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_selfperf: %s: parse error: %s\n",
                     path.c_str(), e.what());
        return 1;
    }

    const double legacy =
        engineEventsPerSec<damn::bench::LegacyEngine>(events);
    const double fast = engineEventsPerSec<damn::sim::Engine>(events);
    const double measured = fast / legacy;
    const double floor = baseline * (1.0 - tolerance_pct / 100.0);
    std::printf("engine speedup: measured %.3fx, baseline %.3fx, "
                "floor %.3fx (tolerance %.0f%%)\n",
                measured, baseline, floor, tolerance_pct);
    if (measured < floor) {
        std::fprintf(stderr,
                     "bench_selfperf: engine fast-path REGRESSION: "
                     "%.3fx < %.3fx\n",
                     measured, floor);
        return 5;
    }
    std::printf("engine fast path within tolerance\n");

    // Intra-run shard scaling A/B at a small window (the virtual-time
    // workload is identical at any worker count, so the digest gate is
    // exact even when the wall-clock numbers are noisy).
    const TimeNs warmup = damn::sim::kNsPerMs;
    const TimeNs measure = 3 * damn::sim::kNsPerMs;
    const ShardTrial w1 = runShardTrial(1, warmup, measure);
    const ShardTrial w4 = runShardTrial(4, warmup, measure);
    std::printf("shard scaling: w1 %.3fM ev/s, w4 %.3fM ev/s "
                "(%.2fx), digest %s/%s\n",
                w1.eventsPerSec / 1e6, w4.eventsPerSec / 1e6,
                w1.eventsPerSec > 0.0
                    ? w4.eventsPerSec / w1.eventsPerSec
                    : 0.0,
                digestHex(w1.digest).c_str(),
                digestHex(w4.digest).c_str());
    if (w1.digest != w4.digest || w1.events != w4.events) {
        std::fprintf(stderr,
                     "bench_selfperf: shard DETERMINISM violation: "
                     "workers=1 and workers=4 diverged\n");
        return 5;
    }
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw >= 4) {
        const double shard_speedup =
            w1.eventsPerSec > 0.0 ? w4.eventsPerSec / w1.eventsPerSec
                                  : 0.0;
        double shard_floor = 1.5;
        if (shard_baseline > 0.0)
            shard_floor = std::max(
                shard_floor,
                shard_baseline * (1.0 - tolerance_pct / 100.0));
        if (shard_speedup < shard_floor) {
            std::fprintf(stderr,
                         "bench_selfperf: shard scaling REGRESSION: "
                         "%.3fx < %.3fx\n",
                         shard_speedup, shard_floor);
            return 5;
        }
        std::printf("shard scaling within tolerance\n");
    } else {
        std::printf("shard speedup gate skipped: host has %u hardware "
                    "thread(s); determinism gate enforced\n",
                    hw);
    }
    return 0;
}

int
checkFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_selfperf: cannot read %s\n",
                     path.c_str());
        return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    try {
        std::string err;
        if (!checkSchema(damn::exp::Json::parse(ss.str()), &err)) {
            std::fprintf(stderr,
                         "bench_selfperf: %s: schema violation: %s\n",
                         path.c_str(), err.c_str());
            return 1;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "bench_selfperf: %s: parse error: %s\n",
                     path.c_str(), e.what());
        return 1;
    }
    std::printf("%s: schema ok\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out = "BENCH_selfperf.json";
    std::string check;
    std::string regress;
    double tolerance = 15.0;
    std::uint64_t events = 2'000'000;
    TimeNs warmup_ns = 5 * damn::sim::kNsPerMs;
    TimeNs measure_ns = 20 * damn::sim::kNsPerMs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg : arg.substr(0, eq);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (key == "--help") {
            std::printf("%s", kUsage);
            return 0;
        } else if (key == "--out" && !value.empty()) {
            out = value;
        } else if (key == "--check" && !value.empty()) {
            check = value;
        } else if (key == "--regress-check" && !value.empty()) {
            regress = value;
        } else if (key == "--tolerance" && !value.empty()) {
            tolerance = std::strtod(value.c_str(), nullptr);
            if (!(tolerance > 0.0 && tolerance < 100.0)) {
                std::fprintf(stderr,
                             "bench_selfperf: --tolerance must be in "
                             "(0, 100)\n");
                return 2;
            }
        } else if (key == "--events" && !value.empty()) {
            events = std::strtoull(value.c_str(), nullptr, 10);
        } else if (key == "--warmup-ms" && !value.empty()) {
            warmup_ns = std::strtoull(value.c_str(), nullptr, 10) *
                damn::sim::kNsPerMs;
        } else if (key == "--measure-ms" && !value.empty()) {
            measure_ns = std::strtoull(value.c_str(), nullptr, 10) *
                damn::sim::kNsPerMs;
        } else {
            std::fprintf(stderr, "bench_selfperf: bad argument: %s\n%s",
                         arg.c_str(), kUsage);
            return 2;
        }
    }
    if (!check.empty())
        return checkFile(check);
    if (!regress.empty()) {
        if (events == 0) {
            std::fprintf(stderr,
                         "bench_selfperf: --events must be positive\n");
            return 2;
        }
        return regressCheck(regress, tolerance, events);
    }
    if (events == 0 || measure_ns == 0) {
        std::fprintf(stderr,
                     "bench_selfperf: --events/--measure-ms must be "
                     "positive\n");
        return 2;
    }

    // Engine A/B: legacy first so its allocator churn cannot warm
    // caches for the production engine's run.
    const double legacy =
        engineEventsPerSec<damn::bench::LegacyEngine>(events);
    const double fast =
        engineEventsPerSec<damn::sim::Engine>(events);
    std::printf("engine dispatch: fast %.3fM ev/s, legacy %.3fM ev/s "
                "(%.2fx)\n",
                fast / 1e6, legacy / 1e6, fast / legacy);

    std::vector<UnitResult> units;
    for (const damn::dma::SchemeKind k : damn::exp::defaultSchemes()) {
        units.push_back(runUnit(k, warmup_ns, measure_ns));
        const UnitResult &u = units.back();
        std::printf("%s/%-9s  %7.1f wall-ms for %.1f sim-ms  "
                    "(%.0f wall-ns/sim-ms, %.3fM ev/s)\n",
                    u.name.c_str(), u.scheme.c_str(), u.wallMs,
                    u.simMs, u.wallNsPerSimMs, u.eventsPerSec / 1e6);
    }

    // Intra-run shard scaling: the same sharded workload at 1/2/4
    // workers.  Identical digests are a hard gate — a divergence means
    // the parallel rounds executed different events than serial.
    std::vector<ShardTrial> shard_trials;
    for (const unsigned w : {1u, 2u, 4u}) {
        shard_trials.push_back(runShardTrial(w, warmup_ns, measure_ns));
        const ShardTrial &t = shard_trials.back();
        std::printf("sharded_netperf/damn w=%u  %7.1f wall-ms  "
                    "(%.3fM ev/s, digest %s)\n",
                    t.workers, t.wallMs, t.eventsPerSec / 1e6,
                    digestHex(t.digest).c_str());
    }
    for (const ShardTrial &t : shard_trials) {
        if (t.digest != shard_trials.front().digest ||
            t.events != shard_trials.front().events) {
            std::fprintf(stderr,
                         "bench_selfperf: shard DETERMINISM "
                         "violation: workers=%u diverged from "
                         "workers=%u\n",
                         t.workers, shard_trials.front().workers);
            return 4;
        }
    }

    using damn::exp::Json;
    Json doc = Json::object();
    doc.set("schema_version", 2);
    doc.set("generator", "bench_selfperf");
    Json eng = Json::object();
    eng.set("events", events);
    eng.set("fast_events_per_sec", fast);
    eng.set("legacy_events_per_sec", legacy);
    eng.set("speedup", fast / legacy);
    doc.set("engine", std::move(eng));
    Json junits = Json::array();
    junits.reserve(units.size());
    for (const UnitResult &u : units) {
        Json ju = Json::object();
        ju.set("name", u.name);
        ju.set("scheme", u.scheme);
        ju.set("sim_ms", u.simMs);
        ju.set("wall_ms", u.wallMs);
        ju.set("wall_ns_per_sim_ms", u.wallNsPerSimMs);
        ju.set("events", u.events);
        ju.set("events_per_sec", u.eventsPerSec);
        junits.push(std::move(ju));
    }
    doc.set("units", std::move(junits));

    Json shard = Json::object();
    shard.set("workload", "sharded_netperf_damn");
    shard.set("shards", std::uint64_t(kShardCount));
    shard.set("digest", digestHex(shard_trials.front().digest));
    Json jtrials = Json::array();
    jtrials.reserve(shard_trials.size());
    for (const ShardTrial &t : shard_trials) {
        Json jt = Json::object();
        jt.set("workers", std::uint64_t(t.workers));
        jt.set("events", t.events);
        jt.set("wall_ms", t.wallMs);
        jt.set("events_per_sec", t.eventsPerSec);
        jtrials.push(std::move(jt));
    }
    shard.set("trials", std::move(jtrials));
    shard.set("speedup_w4",
              shard_trials.front().eventsPerSec > 0.0
                  ? shard_trials.back().eventsPerSec /
                        shard_trials.front().eventsPerSec
                  : 0.0);
    doc.set("shard", std::move(shard));

    const std::string text = doc.dump();
    std::FILE *f = std::fopen(out.c_str(), "wb");
    if (!f) {
        std::fprintf(stderr, "bench_selfperf: cannot write %s\n",
                     out.c_str());
        return 1;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    std::printf("wrote %s (%zu bytes)\n", out.c_str(), text.size());
    return 0;
}
