# Golden-trace smoke: run damn_bench twice with the same seed and
# --only glob, and require the Chrome trace and the JSON report to be
# byte-identical across the two runs.
#
# Invoked as:
#   cmake -DBENCH=<damn_bench> -DOUT=<dir> -P trace_smoke.cmake

set(args --only=netperf_stream --schemes=strict,damn
         --warmup-ms=1 --measure-ms=3)

foreach(run a b)
    execute_process(
        COMMAND ${BENCH} ${args}
                --trace=${OUT}/trace_${run}.json
                --json=${OUT}/report_${run}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "damn_bench run '${run}' failed: ${rc}")
    endif()
endforeach()

foreach(file trace report)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT}/${file}_a.json ${OUT}/${file}_b.json
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "${file} output differs between same-seed runs")
    endif()
endforeach()

# The trace must be non-trivial (events, not just the JSON skeleton).
file(SIZE ${OUT}/trace_a.json trace_bytes)
if(trace_bytes LESS 1000)
    message(FATAL_ERROR "trace output suspiciously small: "
                        "${trace_bytes} bytes")
endif()
