/**
 * @file
 * Figure 4: single-core TCP throughput and CPU utilization of netperf
 * TCP_STREAM (4 instances pinned to one core, both NIC ports, 64 KiB
 * TSO/LRO aggregates, jumbo frames).
 *
 * Paper reference points (Gb/s @ 100% of one core):
 *   RX: iommu-off 67, deferred 65, damn 66, strict 50, shadow 26
 *   TX: iommu-off 73, deferred ~63, damn 74, strict ~48, shadow 44
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    bench::printHeader("Figure 4a: single-core netperf TCP-STREAM RX");
    std::printf("%-10s %12s %14s\n", "scheme", "Gb/s", "CPU% (1 core)");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        auto run = work::runNetperf(
            work::singleCoreOpts(k, work::NetMode::Rx));
        std::printf("%-10s %12.1f %14.1f\n", dma::schemeKindName(k),
                    run.res.totalGbps,
                    run.sys->ctx.machine.coreUtilizationPct(
                        0, 200 * sim::kNsPerMs));
    }

    bench::printHeader("Figure 4b: single-core netperf TCP-STREAM TX");
    std::printf("%-10s %12s %14s\n", "scheme", "Gb/s", "CPU% (1 core)");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        auto run = work::runNetperf(
            work::singleCoreOpts(k, work::NetMode::Tx));
        std::printf("%-10s %12.1f %14.1f\n", dma::schemeKindName(k),
                    run.res.totalGbps,
                    run.sys->ctx.machine.coreUtilizationPct(
                        0, 200 * sim::kNsPerMs));
    }
    return 0;
}
