# ATS-smoke: the rdma_pagefault experiment end to end through the real
# binary.
#
#  1. Determinism: the same seed writes byte-identical JSON for
#     --jobs=1 and --jobs=8 (the PRI path leaks no wall-clock state).
#  2. Liveness: the sweep actually exercised the page-fault path —
#     every run reports a nonzero faults_serviced metric and the
#     devtlb/prq stat block is present.
#
# Invoked as:
#   cmake -DBENCH=<damn_bench> -DOUT=<dir> -P ats_smoke.cmake

foreach(jobs 1 8)
    execute_process(
        COMMAND ${BENCH} --only=rdma_pagefault --warmup-ms=1
                --measure-ms=2 --seed=42 --jobs=${jobs}
                --json=${OUT}/ats_smoke_j${jobs}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "rdma_pagefault run (--jobs=${jobs}) failed: ${rc}")
    endif()
endforeach()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            ${OUT}/ats_smoke_j1.json ${OUT}/ats_smoke_j8.json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
            "rdma_pagefault JSON not deterministic (--jobs=1 vs 8)")
endif()

file(READ ${OUT}/ats_smoke_j1.json report)
foreach(metric faults_serviced auto_responses prq_max_depth
        devtlb_hit_rate fault_service_avg_ns)
    if(NOT report MATCHES "\"${metric}\"")
        message(FATAL_ERROR
                "rdma_pagefault JSON is missing the ${metric} metric")
    endif()
endforeach()
if(NOT report MATCHES "\"faults_serviced\": {\n *\"value\": [1-9]")
    message(FATAL_ERROR
            "rdma_pagefault never serviced a page fault")
endif()
# A run that serviced zero faults would print "value": 0 — reject any.
if(report MATCHES "\"faults_serviced\": {\n *\"value\": 0,")
    message(FATAL_ERROR
            "an rdma_pagefault run serviced zero page faults")
endif()
