/**
 * @file
 * Shared table-printing helpers for the figure/table benches.
 */

#ifndef DAMN_BENCH_UTIL_HH
#define DAMN_BENCH_UTIL_HH

#include <cstdio>
#include <vector>

#include "dma/schemes.hh"

namespace damn::bench {

/** The five configurations every figure compares. */
inline const std::vector<dma::SchemeKind> &
allSchemes()
{
    static const std::vector<dma::SchemeKind> k = {
        dma::SchemeKind::IommuOff,  dma::SchemeKind::Deferred,
        dma::SchemeKind::Strict,    dma::SchemeKind::Shadow,
        dma::SchemeKind::Damn,
    };
    return k;
}

inline void
printHeader(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

inline void
printRule()
{
    std::printf("---------------------------------------------"
                "-------------------------\n");
}

} // namespace damn::bench

#endif // DAMN_BENCH_UTIL_HH
