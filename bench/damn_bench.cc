/**
 * @file
 * damn_bench: the one driver behind every evaluation experiment.
 * All logic lives in src/exp so tests can exercise it in-process.
 */

#include "exp/driver.hh"

int
main(int argc, char **argv)
{
    return damn::exp::runDriver(argc, argv);
}
