/**
 * @file
 * Figure 7: memcached aggregated throughput and CPU utilization
 * (28 instances, memslap 50/50 GET/SET with 512 KiB keys+values).
 *
 * Paper reference points: damn, shadow and deferred reach comparable
 * TPS to iommu-off; shadow burns ~1.6x the CPU of damn/iommu-off;
 * strict obtains about half the TPS (8816) at 70% CPU.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/memcached.hh"

using namespace damn;

int
main()
{
    bench::printHeader("Figure 7: memcached (memslap 50/50 GET/SET, "
                       "512 KiB values)");
    std::printf("%-10s %12s %14s %12s\n", "scheme", "TPS",
                "CPU% (28 cores)", "Gb/s");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        work::MemcachedOpts o;
        o.scheme = k;
        const work::MemcachedResult r = work::runMemcached(o);
        std::printf("%-10s %12.0f %14.1f %12.1f\n",
                    dma::schemeKindName(k), r.tps, r.cpuPct, r.gbps);
    }
    return 0;
}
