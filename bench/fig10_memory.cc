/**
 * @file
 * Figure 10: kernel memory usage during multi-core netperf
 * TCP_STREAM, sweeping the number of concurrent instances, for
 * iommu-off vs damn (RX-only, TX-only, and bidirectional).
 *
 * Paper reference point: because the DMA cache recycles its chunks,
 * damn consumes only the memory the workload's in-flight networking
 * data needs — within ~270 MiB of iommu-off everywhere, with neither
 * system consistently better.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

namespace {

double
kernelMemMiB(const work::NetperfRun &run)
{
    return double(run.sys->pageAlloc.allocatedFrames()) * 4096.0 /
        (1 << 20);
}

} // namespace

int
main()
{
    bench::printHeader("Figure 10: kernel memory usage (MiB) vs "
                       "netperf instances");
    std::printf("%-6s %-6s %14s %14s\n", "mode", "insts", "iommu-off",
                "damn");
    bench::printRule();

    for (auto [mode, name] : {std::pair{work::NetMode::Rx, "RX"},
                              std::pair{work::NetMode::Tx, "TX"},
                              std::pair{work::NetMode::Bidi, "RX+TX"}}) {
        for (const unsigned instances : {4u, 8u, 16u, 28u, 56u}) {
            double mib[2];
            unsigned i = 0;
            for (const auto scheme : {dma::SchemeKind::IommuOff,
                                      dma::SchemeKind::Damn}) {
                work::NetperfOpts o;
                o.scheme = scheme;
                o.mode = mode;
                o.instances = instances;
                o.segBytes = 16 * 1024;
                o.costFactor = o.sysParams.cost.multiFlowFactor;
                o.measureNs = 100 * sim::kNsPerMs;
                auto run = work::runNetperf(o);
                mib[i++] = kernelMemMiB(run);
            }
            std::printf("%-6s %-6u %14.1f %14.1f\n", name, instances,
                        mib[0], mib[1]);
        }
    }
    return 0;
}
