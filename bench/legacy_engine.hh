/**
 * @file
 * The pre-fast-path DES engine, kept verbatim (header-only) as the
 * baseline `bench_selfperf` measures the production engine against:
 * std::function callbacks (heap-allocating beyond the implementation's
 * tiny inline buffer), a binary std::priority_queue of fat Event
 * structs, and an unordered_set consulted once per pop for lazy
 * cancellation.  Benchmark-only code — nothing in src/ links this.
 */

#ifndef DAMN_BENCH_LEGACY_ENGINE_HH
#define DAMN_BENCH_LEGACY_ENGINE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.hh"

namespace damn::bench {

/** The seed-state Engine, for A/B dispatch-rate comparison. */
class LegacyEngine
{
  public:
    using Callback = std::function<void()>;

    LegacyEngine() = default;
    LegacyEngine(const LegacyEngine &) = delete;
    LegacyEngine &operator=(const LegacyEngine &) = delete;

    sim::TimeNs now() const { return now_; }

    std::uint64_t
    schedule(sim::TimeNs when, Callback cb)
    {
        if (when < now_)
            when = now_;
        const std::uint64_t id = nextId_++;
        queue_.push(Event{when, id, std::move(cb)});
        ++live_;
        return id;
    }

    std::uint64_t
    scheduleIn(sim::TimeNs delay, Callback cb)
    {
        return schedule(now_ + delay, std::move(cb));
    }

    bool
    cancel(std::uint64_t id)
    {
        const bool fresh = cancelled_.insert(id).second;
        if (fresh)
            --live_;
        return fresh;
    }

    std::uint64_t
    run(sim::TimeNs until)
    {
        std::uint64_t n = 0;
        while (!queue_.empty()) {
            if (queue_.top().when > until)
                break;
            Event ev = std::move(const_cast<Event &>(queue_.top()));
            queue_.pop();
            auto it = cancelled_.find(ev.id);
            if (it != cancelled_.end()) {
                cancelled_.erase(it);
                continue;
            }
            --live_;
            now_ = ev.when;
            ++dispatched_;
            ++n;
            ev.cb();
        }
        return n;
    }

    std::uint64_t runAll() { return run(~sim::TimeNs{0}); }
    std::uint64_t pending() const { return live_; }
    std::uint64_t dispatched() const { return dispatched_; }

  private:
    struct Event
    {
        sim::TimeNs when;
        std::uint64_t id;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.id > b.id;
        }
    };

    sim::TimeNs now_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t live_ = 0;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    std::unordered_set<std::uint64_t> cancelled_;
};

} // namespace damn::bench

#endif // DAMN_BENCH_LEGACY_ENGINE_HH
