/**
 * @file
 * Figure 9: pages ever mapped for DMA vs pages currently mapped, in
 * stock Linux (deferred protection), while netperf runs beside an
 * allocator-churning kernel-compile-like job.
 *
 * Paper reference points: the *currently* mapped set stays flat
 * (tens of MiB), while the *ever* mapped set grows monotonically —
 * stock Linux does not systematically reuse DMA pages, so the exposure
 * of partial-protection windows compounds over time.  (The paper runs
 * 30 wall-clock minutes; we run a scaled-down window.)
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/kbuild.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    work::NetperfOpts o;
    o.scheme = dma::SchemeKind::Deferred;
    o.mode = work::NetMode::Rx;
    o.instances = 4;
    o.coreLimit = 4;
    o.segBytes = 64 * 1024;
    o.costFactor = 1.0;

    work::NetperfRun run = work::makeNetperfSystem(o);
    work::KbuildChurn churn(run.sys->ctx, run.sys->pageAlloc, {});
    churn.start();

    net::StreamEngine eng(*run.sys, *run.nic, *run.stack, {});
    work::addNetperfFlows(run, eng, o);
    eng.startAll();

    bench::printHeader("Figure 9: DMA page usage over time "
                       "(deferred, netperf + kbuild churn)");
    std::printf("%-10s %18s %18s\n", "t (ms)", "ever mapped (MiB)",
                "currently (MiB)");
    bench::printRule();

    auto &sys = *run.sys;
    const sim::TimeNs horizon = 3 * sim::kNsPerSec;
    for (sim::TimeNs t = 200 * sim::kNsPerMs; t <= horizon;
         t += 200 * sim::kNsPerMs) {
        sys.ctx.engine.run(t);
        const double mib = 4096.0 / (1 << 20);
        std::printf("%-10llu %18.1f %18.1f\n",
                    (unsigned long long)(t / sim::kNsPerMs),
                    double(sys.mmu.everMappedFrames()) * mib,
                    double(sys.mmu.currentlyMappedPages()) * mib);
    }
    return 0;
}
