/**
 * @file
 * Fault storm: goodput degradation vs injected DMA-fault rate.
 *
 * A netperf-style multi-core RX run under each protection scheme,
 * with the fault injector dropping NIC RX DMAs at increasing
 * probability (fixed seed, so every cell is reproducible bit-for-bit).
 * Each dropped segment costs a retransmission timeout plus a resend,
 * so goodput decays with the fault rate; the per-scheme baseline shows
 * how much headroom each scheme has to absorb the recovery work.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr double kRates[] = {0.0, 0.0001, 0.001, 0.01};

struct Cell
{
    double gbps = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmits = 0;
    unsigned failed = 0;
};

Cell
runCell(dma::SchemeKind k, double rate)
{
    work::NetperfOpts opts = work::multiCoreOpts(k, work::NetMode::Rx);
    // Short windows: the storm sweeps 20 cells.
    opts.warmupNs = 5 * sim::kNsPerMs;
    opts.measureNs = 30 * sim::kNsPerMs;
    auto run = work::runNetperf(opts, [&](work::NetperfRun &r) {
        if (rate > 0.0) {
            r.sys->ctx.faults.enable(kSeed);
            r.sys->ctx.faults.setProbability(sim::FaultSite::NicRx,
                                             rate);
        }
    });
    Cell c;
    c.gbps = run.res.totalGbps;
    c.drops = run.res.drops;
    c.retransmits = run.res.retransmits;
    c.failed = run.res.failedFlows;
    return c;
}

} // namespace

int
main()
{
    bench::printHeader(
        "Fault storm: RX goodput (Gb/s) vs injected nic.rx fault rate");
    std::printf("%-10s", "scheme");
    for (double p : kRates)
        std::printf(" %11.4f", p);
    std::printf("\n");
    bench::printRule();

    for (dma::SchemeKind k : bench::allSchemes()) {
        std::printf("%-10s", dma::schemeKindName(k));
        for (double p : kRates) {
            const Cell c = runCell(k, p);
            std::printf(" %11.1f", c.gbps);
        }
        std::printf("\n");
    }

    bench::printHeader("Recovery accounting at p = 0.01");
    std::printf("%-10s %12s %12s %8s\n", "scheme", "drops",
                "retransmits", "failed");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        const Cell c = runCell(k, 0.01);
        std::printf("%-10s %12llu %12llu %8u\n", dma::schemeKindName(k),
                    static_cast<unsigned long long>(c.drops),
                    static_cast<unsigned long long>(c.retransmits),
                    c.failed);
    }
    return 0;
}
