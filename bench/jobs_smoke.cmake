# Parallel-determinism smoke through the real binary: the same seed at
# --jobs=1 and --jobs=8 must write byte-identical --json and --trace
# files (the in-process equivalent lives in tests/test_parallel.cc).
#
# Invoked as:
#   cmake -DBENCH=<damn_bench> -DOUT=<dir> -P jobs_smoke.cmake

set(args --only=fig4* --warmup-ms=1 --measure-ms=3 --repeat=2)

foreach(jobs 1 8)
    execute_process(
        COMMAND ${BENCH} ${args} --jobs=${jobs}
                --trace=${OUT}/jobs_${jobs}.trace
                --json=${OUT}/jobs_${jobs}.json
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "damn_bench --jobs=${jobs} failed: ${rc}")
    endif()
endforeach()

foreach(ext json trace)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E compare_files
                ${OUT}/jobs_1.${ext} ${OUT}/jobs_8.${ext}
        RESULT_VARIABLE rc)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
                "--jobs=8 ${ext} output differs from --jobs=1")
    endif()
endforeach()
