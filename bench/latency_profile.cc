/**
 * @file
 * Extension bench (not in the paper): per-segment end-to-end latency
 * distribution under each protection scheme, multi-core RX at NIC
 * line rate.
 *
 * The paper reports only throughput and CPU; latency tails tell the
 * same story earlier — strict's invalidation-lock queueing produces a
 * fat p99 long before throughput collapses, while damn's tail tracks
 * iommu-off.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workloads/netperf.hh"

using namespace damn;

int
main()
{
    bench::printHeader("Extension: per-segment latency (multi-core "
                       "netperf RX, 16 KiB aggregates)");
    std::printf("%-10s %10s %10s %10s %10s %10s\n", "scheme",
                "Gb/s", "p50 (us)", "p95 (us)", "p99 (us)", "max (us)");
    bench::printRule();
    for (dma::SchemeKind k : bench::allSchemes()) {
        const auto run =
            work::runNetperf(work::multiCoreOpts(k, work::NetMode::Rx));
        const auto &h = run.res.latency;
        std::printf("%-10s %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                    dma::schemeKindName(k), run.res.totalGbps,
                    double(h.p50()) / 1e3, double(h.p95()) / 1e3,
                    double(h.p99()) / 1e3, double(h.maxNs()) / 1e3);
    }
    return 0;
}
